"""First-order analytic model of VCore performance.

Performance is expressed as IPC from four additive CPI components:

* **core** - dependence-limited issue rate: the harmonic combination of
  the structural width (ALU/LSU ports across Slices) and the benchmark's
  ILP, the latter degraded by Scalar Operand Network latency for the
  fraction of dependence edges that cross Slices;
* **rename/branch** - branch mispredictions pay the front-end depth,
  which grows with the multi-Slice global-rename broadcast;
* **memory** - L1 misses pay the distance-dependent L2 hit latency
  (paper Table 3: ``distance * 2 + 4``; Section 5.4: 2 extra cycles per
  additional 256 KB) and L2 misses additionally the 100-cycle memory
  delay, divided by the benchmark's memory-level parallelism (which grows
  with the aggregate window);
* **threading cap** - PARSEC VCores are speedup-bounded
  (paper Section 5.3: "the speedup is bounded by 2").

The constants below are the calibration surface; they were tuned so the
model reproduces the published shapes (Figure 12 scaling order, Figure 13
peaks and declines, Tables 4/6/7 optima drift).
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass
from functools import lru_cache
from typing import Dict, List, Sequence, Tuple, Union

from repro.trace.profiles import BenchmarkProfile, get_profile

#: Cache sweep used throughout the evaluation (paper Equation 3 and
#: Figure 13: 0 KB to 8 MB).
CACHE_GRID_KB: Tuple[float, ...] = (0, 64, 128, 256, 512, 1024, 2048, 4096, 8192)

#: Slice sweep (paper Equation 3: 1 to 8 Slices).
SLICE_GRID: Tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7, 8)

# ---------------------------------------------------------------------
# calibration constants
# ---------------------------------------------------------------------

#: Structural ALU-path utilisation: one ALU per Slice serves the non-mem
#: fraction of the stream, so the width-limited IPC is slices / this.
ALU_PATH_FRACTION = 0.66
#: Out-of-order tolerance to operand-network latency (cycles of remote
#: latency hidden per dependence edge by the issue window).
COMM_TOLERANCE = 9.0
#: Base front-end refill depth on a mispredict (fetch+decode+rename+issue).
BRANCH_PENALTY_BASE = 12.0
#: Extra mispredict depth per multi-Slice VCore (global rename broadcast).
BRANCH_PENALTY_MULTISLICE = 3.0
#: Memory-level parallelism growth per extra Slice, scaled by how much
#: intrinsic memory parallelism the workload has (bigger windows cannot
#: overlap a serial pointer chase, but MSHRs, LSQ banks and window
#: capacity all grow with Slice count, Table 1).
MLP_PER_SLICE = 0.55
#: Fixed component of the L2 hit delay (paper Table 3: distance*2+4).
L2_LAT_BASE = 4.0
L2_LAT_PER_DISTANCE = 2.0
#: Main memory delay (paper Table 2).
MEMORY_DELAY = 100.0
#: Fraction of L1-hit latency exposed on the critical path.
L1_EXPOSED = 0.35
#: L1 hit latency (paper Table 3).
L1_LATENCY = 3.0

#: The module-level calibration surface by name.  The engine's on-disk
#: result cache folds these values into every key, so editing a constant
#: invalidates stale cached sweeps automatically.
CALIBRATION_CONSTANTS: Tuple[str, ...] = (
    "ALU_PATH_FRACTION",
    "COMM_TOLERANCE",
    "BRANCH_PENALTY_BASE",
    "BRANCH_PENALTY_MULTISLICE",
    "MLP_PER_SLICE",
    "L2_LAT_BASE",
    "L2_LAT_PER_DISTANCE",
    "MEMORY_DELAY",
    "L1_EXPOSED",
    "L1_LATENCY",
)

ProfileLike = Union[str, BenchmarkProfile]


def _resolve(profile: ProfileLike) -> BenchmarkProfile:
    if isinstance(profile, BenchmarkProfile):
        return profile
    return get_profile(profile)


def calibration_constants() -> Dict[str, float]:
    """Current values of the calibration surface, by constant name."""
    import sys

    module = sys.modules[__name__]
    return {name: getattr(module, name) for name in CALIBRATION_CONSTANTS}


def profile_key(profile: ProfileLike) -> Tuple[Tuple[str, object], ...]:
    """Canonical hashable identity of a profile: its fields, sorted.

    Both the in-process memo and the engine's on-disk cache key off this,
    so ``performance("gcc", ...)`` and
    ``performance(get_profile("gcc"), ...)`` share entries.
    """
    return tuple(sorted(asdict(_resolve(profile)).items()))


def l2_mean_latency(cache_kb: float) -> float:
    """Average L2 hit latency for a compact 2-D ``cache_kb`` allocation.

    Banks pack in Manhattan rings (4r banks at distance r), interleaved
    uniformly, so the average hit pays the capacity-weighted mean
    distance at ``distance * 2 + 4`` (paper Table 3).
    """
    if cache_kb <= 0:
        return 0.0
    banks = max(1, int(round(cache_kb / 64.0)))
    total_dist = 0
    placed = 0
    ring = 1
    while placed < banks:
        take = min(4 * ring, banks - placed)
        total_dist += ring * take
        placed += take
        ring += 1
    mean_distance = total_dist / banks
    return L2_LAT_BASE + L2_LAT_PER_DISTANCE * mean_distance


@dataclass(frozen=True)
class CPIBreakdown:
    """The additive CPI components for one configuration."""

    core: float
    branch: float
    memory: float

    @property
    def total(self) -> float:
        return self.core + self.branch + self.memory

    @property
    def ipc(self) -> float:
        return 1.0 / self.total


class AnalyticModel:
    """Analytic ``P(c, s)`` evaluator."""

    def __init__(self, comm_tolerance: float = COMM_TOLERANCE,
                 mlp_per_slice: float = MLP_PER_SLICE):
        if comm_tolerance <= 0:
            raise ValueError("comm_tolerance must be positive")
        if mlp_per_slice < 0:
            raise ValueError("mlp_per_slice cannot be negative")
        self.comm_tolerance = comm_tolerance
        self.mlp_per_slice = mlp_per_slice

    # ------------------------------------------------------------------
    # CPI components
    # ------------------------------------------------------------------

    def _effective_ilp(self, profile: BenchmarkProfile, slices: int) -> float:
        """ILP after operand-network degradation."""
        if slices == 1:
            return profile.ilp
        cross_fraction = profile.comm_sens * (1.0 - 1.0 / slices)
        mean_hops = (slices + 1) / 3.0
        one_way = 1.0 + mean_hops  # 2 cycles nearest neighbour, +1/hop
        penalty = cross_fraction * one_way / self.comm_tolerance
        return profile.ilp / (1.0 + penalty)

    def _core_cpi(self, profile: BenchmarkProfile, slices: int) -> float:
        width_cap = min(2.0 * slices, slices / ALU_PATH_FRACTION)
        ilp = self._effective_ilp(profile, slices)
        ipc = 1.0 / (1.0 / width_cap + 1.0 / ilp)
        return 1.0 / ipc

    def _branch_cpi(self, profile: BenchmarkProfile, slices: int) -> float:
        penalty = BRANCH_PENALTY_BASE
        if slices > 1:
            penalty += BRANCH_PENALTY_MULTISLICE + (slices + 1) / 3.0
        return (profile.br_mpki / 1000.0) * penalty

    def _memory_cpi(self, profile: BenchmarkProfile, cache_kb: float,
                    slices: int) -> float:
        miss = profile.l2_miss_fraction(cache_kb)
        l2_lat = l2_mean_latency(cache_kb)
        avg = l2_lat + miss * MEMORY_DELAY
        # Window growth multiplies MLP only to the extent the workload has
        # independent misses to expose (mlp > 1); a serial chase stays
        # serial no matter how many Slices watch it.  Growth saturates
        # (sqrt) because the MSHR chain depth, not just capacity, limits
        # overlap.
        mlp = profile.mlp * (
            1.0 + self.mlp_per_slice * (profile.mlp - 1.0)
            * math.sqrt(slices - 1)
        )
        # L1 hit latency partially exposed; larger windows hide more.
        exposed_l1 = (L1_EXPOSED * L1_LATENCY * (profile.frac_load / 0.25)
                      / (10.0 * (1.0 + 0.3 * (slices - 1))))
        return (profile.l1_mpki / 1000.0) * avg / mlp + exposed_l1

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def breakdown(self, profile: ProfileLike, cache_kb: float,
                  slices: int) -> CPIBreakdown:
        """CPI decomposition for one configuration."""
        prof = _resolve(profile)
        if slices < 1:
            raise ValueError("a VCore has at least one Slice")
        if cache_kb < 0:
            raise ValueError("cache size cannot be negative")
        return CPIBreakdown(
            core=self._core_cpi(prof, slices),
            branch=self._branch_cpi(prof, slices),
            memory=self._memory_cpi(prof, cache_kb, slices),
        )

    def performance(self, profile: ProfileLike, cache_kb: float,
                    slices: int) -> float:
        """Single-thread performance ``P(c, s)`` in IPC.

        PARSEC profiles are speedup-capped per the paper: whatever the
        analytic pipeline would deliver, the per-VCore speedup over one
        Slice never exceeds ``thread_cap``.
        """
        prof = _resolve(profile)
        ipc = self.breakdown(prof, cache_kb, slices).ipc
        if prof.thread_cap and slices > 1:
            base = self.breakdown(prof, cache_kb, 1).ipc
            ipc = min(ipc, prof.thread_cap * base)
        return ipc

    def speedup(self, profile: ProfileLike, cache_kb: float, slices: int,
                baseline_cache_kb: float = 128.0,
                baseline_slices: int = 1) -> float:
        """Performance normalised to a baseline configuration (Fig 12/13)."""
        return (
            self.performance(profile, cache_kb, slices)
            / self.performance(profile, baseline_cache_kb, baseline_slices)
        )

    def grid(self, profile: ProfileLike,
             cache_grid: Sequence[float] = CACHE_GRID_KB,
             slice_grid: Sequence[int] = SLICE_GRID
             ) -> Dict[Tuple[float, int], float]:
        """Full ``{(cache_kb, slices): P}`` sweep for one benchmark."""
        prof = _resolve(profile)
        return {
            (c, s): self.performance(prof, c, s)
            for c in cache_grid
            for s in slice_grid
        }


@lru_cache(maxsize=None)
def _default_model() -> AnalyticModel:
    return AnalyticModel()


@lru_cache(maxsize=65536)
def _performance_memo(profile: BenchmarkProfile, cache_kb: float,
                      slices: int) -> float:
    # BenchmarkProfile is a frozen dataclass, so it hashes and compares
    # by field values: a name resolved through get_profile() and an
    # equal ad-hoc profile land on the same memo entry.
    return _default_model().performance(profile, cache_kb, slices)


def performance(benchmark: ProfileLike, cache_kb: float,
                slices: int) -> float:
    """Memoised ``P(c, s)`` through the default model.

    Accepts a benchmark name or a :class:`BenchmarkProfile`; both paths
    are memoised (and engine-cache-keyed) identically via the profile's
    field values (:func:`profile_key`).
    """
    return _performance_memo(_resolve(benchmark), cache_kb, slices)


def performance_grid(benchmark: ProfileLike) -> Dict[Tuple[float, int], float]:
    """Memoised full sweep for one benchmark."""
    return _default_model().grid(benchmark)
