"""Analytic performance model ``P(c, s)``.

The paper's evaluation sweeps thousands of (benchmark, cache, Slice)
configurations through SSim on a cluster (Sections 5.5-5.10).  A pure
Python cycle-level simulator cannot sweep that space in reasonable time,
so this package provides the documented substitution: a first-order
analytic pipeline model, driven by the same per-benchmark profiles as the
trace generator and cross-validated against the cycle-level simulator on
anchor configurations (see ``tests/integration/test_model_vs_sim.py``).

All economics (utility, markets, efficiency comparisons) consume only
``P(c, s)`` tables, so the model is the single calibration point for the
quantitative reproduction of Tables 4-7 and Figures 12-17.
"""

from repro.perfmodel.model import (
    AnalyticModel,
    CACHE_GRID_KB,
    CALIBRATION_CONSTANTS,
    SLICE_GRID,
    calibration_constants,
    performance,
    performance_grid,
    profile_key,
)

__all__ = [
    "AnalyticModel",
    "CACHE_GRID_KB",
    "CALIBRATION_CONSTANTS",
    "SLICE_GRID",
    "calibration_constants",
    "performance",
    "performance_grid",
    "profile_key",
]
