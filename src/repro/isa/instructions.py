"""Dynamic instruction records.

An :class:`Instruction` is one element of a dynamic trace: a decoded
instruction instance with resolved branch direction and effective memory
address, which is exactly the information SSim needs (the paper drives SSim
from full-system GEM5 traces, Section 5.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Optional, Tuple

from repro.isa.opcodes import OPCODE_CLASS, OpClass, Opcode
from repro.isa.registers import ZERO_REG


@dataclass(frozen=True)
class MemAccess:
    """Effective memory access of a load or store."""

    address: int
    size: int = 8

    def __post_init__(self) -> None:
        if self.address < 0:
            raise ValueError("negative memory address")
        if self.size <= 0:
            raise ValueError("access size must be positive")

    def cache_line(self, line_size: int = 64) -> int:
        return self.address // line_size


@dataclass(frozen=True)
class Instruction:
    """A single dynamic instruction.

    Attributes
    ----------
    seq:
        Position in the dynamic instruction stream (program order).
    pc:
        Program counter of the static instruction.
    opcode:
        Concrete opcode; its :class:`OpClass` decides the functional unit.
    srcs:
        Architectural source register numbers (reads of ``ZERO_REG`` carry
        no dependence).
    dst:
        Architectural destination register, or ``None``.
    mem:
        Resolved memory access for loads/stores.
    taken / target:
        Resolved direction and target for branches.
    """

    seq: int
    pc: int
    opcode: Opcode
    srcs: Tuple[int, ...] = ()
    dst: Optional[int] = None
    mem: Optional[MemAccess] = None
    taken: bool = False
    target: Optional[int] = None

    def __post_init__(self) -> None:
        cls = self.op_class
        if cls.is_memory and self.mem is None:
            raise ValueError(f"{self.opcode} requires a memory access")
        if not cls.is_memory and self.mem is not None:
            raise ValueError(f"{self.opcode} cannot carry a memory access")
        if cls is OpClass.BRANCH and self.taken and self.target is None:
            raise ValueError("taken branch requires a target")
        for reg in self.srcs:
            if reg < 0:
                raise ValueError("negative source register")
        if self.dst is not None and self.dst < 0:
            raise ValueError("negative destination register")

    # The class tests below sit on the simulator's per-cycle paths
    # (fetch, dispatch, commit all branch on them), so they are cached
    # per instance rather than recomputed through the opcode table.
    # ``cached_property`` writes into ``__dict__`` directly, which is
    # legal even on a frozen dataclass and invisible to field equality.

    @cached_property
    def op_class(self) -> OpClass:
        return OPCODE_CLASS[self.opcode]

    @cached_property
    def is_branch(self) -> bool:
        return self.op_class is OpClass.BRANCH

    @cached_property
    def is_load(self) -> bool:
        return self.op_class is OpClass.LOAD

    @cached_property
    def is_store(self) -> bool:
        return self.op_class is OpClass.STORE

    @cached_property
    def is_mem(self) -> bool:
        return self.op_class.is_memory

    @cached_property
    def writes_register(self) -> bool:
        return self.dst is not None and self.dst != ZERO_REG

    def live_srcs(self) -> Tuple[int, ...]:
        """Source registers that carry a true dependence."""
        return tuple(r for r in self.srcs if r != ZERO_REG)

    def next_pc(self) -> int:
        """PC of the successor instruction in the dynamic stream."""
        if self.is_branch and self.taken:
            assert self.target is not None
            return self.target
        return self.pc + 1


def nop(seq: int = 0, pc: int = 0) -> Instruction:
    """A no-operation filler instruction."""
    return Instruction(seq=seq, pc=pc, opcode=Opcode.NOP)
