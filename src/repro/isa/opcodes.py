"""Opcode and operation-class definitions.

The Sharing Architecture Slice (paper Figure 4, Table 2) contains one ALU,
one multiplier, and one load/store unit.  The simulator therefore only needs
to distinguish operation *classes* with distinct execution resources and
latencies; the concrete opcodes exist so traces read naturally and so
per-opcode statistics can be gathered.
"""

from __future__ import annotations

import enum


class OpClass(enum.Enum):
    """Execution resource class of an instruction."""

    ALU = "alu"
    MUL = "mul"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    NOP = "nop"

    @property
    def is_memory(self) -> bool:
        return self in (OpClass.LOAD, OpClass.STORE)

    @property
    def uses_alu(self) -> bool:
        """Branches and ALU ops contend for the single ALU in a Slice."""
        return self in (OpClass.ALU, OpClass.BRANCH, OpClass.MUL)


class Opcode(enum.Enum):
    """Concrete opcodes of the abstract RISC ISA."""

    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    CMP = "cmp"
    MOV = "mov"
    MUL = "mul"
    LD = "ld"
    ST = "st"
    BEQ = "beq"
    BNE = "bne"
    BLT = "blt"
    BGE = "bge"
    JMP = "jmp"
    NOP = "nop"


#: Mapping from opcode to its execution class.
OPCODE_CLASS = {
    Opcode.ADD: OpClass.ALU,
    Opcode.SUB: OpClass.ALU,
    Opcode.AND: OpClass.ALU,
    Opcode.OR: OpClass.ALU,
    Opcode.XOR: OpClass.ALU,
    Opcode.SHL: OpClass.ALU,
    Opcode.SHR: OpClass.ALU,
    Opcode.CMP: OpClass.ALU,
    Opcode.MOV: OpClass.ALU,
    Opcode.MUL: OpClass.MUL,
    Opcode.LD: OpClass.LOAD,
    Opcode.ST: OpClass.STORE,
    Opcode.BEQ: OpClass.BRANCH,
    Opcode.BNE: OpClass.BRANCH,
    Opcode.BLT: OpClass.BRANCH,
    Opcode.BGE: OpClass.BRANCH,
    Opcode.JMP: OpClass.BRANCH,
    Opcode.NOP: OpClass.NOP,
}

#: Execution latency (cycles spent in the functional unit) per class.
#: Loads/stores additionally pay cache latency; see :mod:`repro.cache`.
EXEC_LATENCY = {
    OpClass.ALU: 1,
    OpClass.MUL: 3,
    OpClass.LOAD: 1,
    OpClass.STORE: 1,
    OpClass.BRANCH: 1,
    OpClass.NOP: 1,
}

#: Opcodes grouped by class, used by the synthetic trace generator to pick
#: a concrete opcode once the class has been decided.
CLASS_OPCODES = {
    OpClass.ALU: [
        Opcode.ADD,
        Opcode.SUB,
        Opcode.AND,
        Opcode.OR,
        Opcode.XOR,
        Opcode.SHL,
        Opcode.SHR,
        Opcode.CMP,
        Opcode.MOV,
    ],
    OpClass.MUL: [Opcode.MUL],
    OpClass.LOAD: [Opcode.LD],
    OpClass.STORE: [Opcode.ST],
    OpClass.BRANCH: [Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE],
    OpClass.NOP: [Opcode.NOP],
}
