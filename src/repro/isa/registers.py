"""Architectural register-file specification.

The paper's Slice (Table 2) exposes an Alpha-like architectural register
space which is renamed twice: first into a *global logical* space shared by
all Slices of a VCore (sized for the maximum 8-Slice configuration), then
into the per-Slice Local Register File (LRF, 64 entries).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Number of architectural (ISA-visible) integer registers.
NUM_ARCH_REGS = 32

#: Register number hard-wired to zero (reads are free, writes discarded).
ZERO_REG = 0

#: Type alias used throughout for architectural register numbers.
ArchReg = int


@dataclass(frozen=True)
class RegisterFileSpec:
    """Sizing of the rename spaces in a VCore.

    Defaults follow paper Table 2: 128 global physical (logical) registers
    per VCore and 64 local registers per Slice.
    """

    num_arch: int = NUM_ARCH_REGS
    num_global_logical: int = 128
    num_local_per_slice: int = 64

    def __post_init__(self) -> None:
        if self.num_arch < 1:
            raise ValueError("need at least one architectural register")
        if self.num_global_logical < self.num_arch:
            raise ValueError(
                "global logical space must cover the architectural space "
                f"({self.num_global_logical} < {self.num_arch})"
            )
        if self.num_local_per_slice < 1:
            raise ValueError("each Slice needs local registers")

    def total_local(self, num_slices: int) -> int:
        """Physical registers available to a VCore of ``num_slices`` Slices.

        The paper's key scaling property: LRF capacity grows with the
        number of Slices (Section 3.2.2).
        """
        if num_slices < 1:
            raise ValueError("a VCore has at least one Slice")
        return self.num_local_per_slice * num_slices
