"""Instruction-set substrate for the Sharing Architecture simulator.

The paper's SSim consumes GEM5 Alpha traces; this package defines the
equivalent abstract RISC instruction record that our synthetic trace
generator emits and the cycle-level simulator (:mod:`repro.core`) consumes.
"""

from repro.isa.opcodes import OpClass, Opcode, OPCODE_CLASS, EXEC_LATENCY
from repro.isa.registers import (
    NUM_ARCH_REGS,
    ZERO_REG,
    ArchReg,
    RegisterFileSpec,
)
from repro.isa.instructions import Instruction, MemAccess, nop

__all__ = [
    "OpClass",
    "Opcode",
    "OPCODE_CLASS",
    "EXEC_LATENCY",
    "NUM_ARCH_REGS",
    "ZERO_REG",
    "ArchReg",
    "RegisterFileSpec",
    "Instruction",
    "MemAccess",
    "nop",
]
