"""Structured event tracer with a bounded ring buffer.

Components emit *events* - instants, completed spans, counter samples -
into an :class:`EventTracer`.  The buffer is a ``deque`` with a fixed
``maxlen``: tracing never grows without bound; once full, the oldest
events are dropped (and counted) so a long run keeps its most recent
window.

The buffer exports to the Chrome ``trace_event`` JSON format
(``{"traceEvents": [...]}``) and can be opened directly in
``chrome://tracing`` or https://ui.perfetto.dev.  Timestamps (``ts``)
are microseconds per the format; the cycle-level simulator maps one
cycle to one microsecond, so a Perfetto timeline reads directly in
cycles.

Event schema (one dict per event)::

    {"name": str, "ph": "X"|"i"|"C", "ts": float, "pid": int,
     "tid": int, "cat": str, ["dur": float,] ["args": {...}]}

``ph`` phases used: ``X`` complete span (has ``dur``), ``i`` instant,
``C`` counter sample.  A :class:`NullTracer` singleton provides the
disabled fast path: every emit method is an empty one-liner.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Dict, List, Optional

#: Default ring capacity (events).  ~65k events is enough for several
#: thousand simulated instructions across all categories.
DEFAULT_CAPACITY = 65536


class EventTracer:
    """Bounded ring buffer of structured trace events."""

    enabled = True

    def __init__(self, capacity: int = DEFAULT_CAPACITY, pid: int = 1):
        if capacity < 1:
            raise ValueError("tracer capacity must be >= 1")
        self.capacity = capacity
        self.pid = pid
        self.emitted = 0
        self._events: deque = deque(maxlen=capacity)
        self._thread_names: Dict[int, str] = {}

    # ------------------------------------------------------------------
    # emission
    # ------------------------------------------------------------------

    def instant(self, name: str, ts: float, cat: str = "",
                tid: int = 0, args: Optional[Dict[str, Any]] = None) -> None:
        self.emitted += 1
        self._events.append((name, "i", ts, tid, cat, None, args))

    def complete(self, name: str, ts: float, dur: float, cat: str = "",
                 tid: int = 0, args: Optional[Dict[str, Any]] = None) -> None:
        self.emitted += 1
        self._events.append((name, "X", ts, tid, cat, dur, args))

    def counter(self, name: str, ts: float, values: Dict[str, float],
                tid: int = 0, cat: str = "") -> None:
        self.emitted += 1
        self._events.append((name, "C", ts, tid, cat, None, dict(values)))

    def set_thread_name(self, tid: int, name: str) -> None:
        """Label a ``tid`` lane in the exported trace."""
        self._thread_names[tid] = name

    # ------------------------------------------------------------------
    # inspection / export
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    @property
    def dropped(self) -> int:
        """Events lost to ring wrap-around."""
        return self.emitted - len(self._events)

    def events(self) -> List[Dict[str, Any]]:
        """The buffered events as trace_event dicts (oldest first)."""
        out: List[Dict[str, Any]] = []
        for name, ph, ts, tid, cat, dur, args in self._events:
            event: Dict[str, Any] = {
                "name": name, "ph": ph, "ts": ts,
                "pid": self.pid, "tid": tid,
            }
            if cat:
                event["cat"] = cat
            if dur is not None:
                event["dur"] = dur
            if args is not None:
                event["args"] = args
            if ph == "i":
                event["s"] = "t"  # instant scope: thread
            out.append(event)
        return out

    def categories(self) -> List[str]:
        return sorted({e[4] for e in self._events if e[4]})

    def chrome_trace(self, process_name: str = "repro") -> Dict[str, Any]:
        """The full Chrome trace_event document (with metadata events)."""
        meta: List[Dict[str, Any]] = [{
            "name": "process_name", "ph": "M", "ts": 0,
            "pid": self.pid, "tid": 0,
            "args": {"name": process_name},
        }]
        for tid, name in sorted(self._thread_names.items()):
            meta.append({
                "name": "thread_name", "ph": "M", "ts": 0,
                "pid": self.pid, "tid": tid, "args": {"name": name},
            })
        return {
            "traceEvents": meta + self.events(),
            "displayTimeUnit": "ms",
            "otherData": {
                "emitted": self.emitted,
                "dropped": self.dropped,
                "capacity": self.capacity,
            },
        }

    def export(self, path, process_name: str = "repro") -> None:
        """Write the Chrome trace JSON to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.chrome_trace(process_name=process_name), handle)

    def clear(self) -> None:
        self._events.clear()
        self.emitted = 0


class NullTracer:
    """Disabled fast path: every method is a no-op."""

    __slots__ = ()

    enabled = False
    capacity = 0
    emitted = 0
    dropped = 0

    def instant(self, name, ts, cat="", tid=0, args=None) -> None:
        pass

    def complete(self, name, ts, dur, cat="", tid=0, args=None) -> None:
        pass

    def counter(self, name, ts, values, tid=0, cat="") -> None:
        pass

    def set_thread_name(self, tid, name) -> None:
        pass

    def __len__(self) -> int:
        return 0

    def events(self) -> List[Dict[str, Any]]:
        return []

    def categories(self) -> List[str]:
        return []

    def chrome_trace(self, process_name: str = "repro") -> Dict[str, Any]:
        return {"traceEvents": [], "displayTimeUnit": "ms", "otherData": {}}

    def export(self, path, process_name: str = "repro") -> None:
        pass

    def clear(self) -> None:
        pass


#: Module-level singleton - the null-object fast path.
NULL_TRACER = NullTracer()
