"""repro.obs: zero-dependency instrumentation for the whole stack.

Three pieces (see DESIGN.md "Observability"):

* :mod:`repro.obs.registry` - a hierarchical Counter/Gauge/Timer/
  Histogram registry that core, cache, network and engine components
  attach to;
* :mod:`repro.obs.tracer` - a bounded ring-buffer event tracer that
  exports Chrome ``trace_event`` JSON for ``chrome://tracing`` /
  Perfetto;
* :mod:`repro.obs.profiling` - wall-clock span helpers feeding both.

:class:`Observability` bundles one registry and one tracer and is what
flows through constructor ``obs=`` parameters.  :data:`OBS_OFF` is the
disabled singleton: all its instruments are module-level null objects,
so un-instrumented runs pay (at most) one no-op call per hook and are
bit-identical to pre-observability behaviour.

Quickstart::

    from repro.obs import Observability

    obs = Observability(trace=True)
    result = simulate(trace, num_slices=4, obs=obs)
    obs.export_trace("sim.trace.json")   # open in ui.perfetto.dev
    print(obs.snapshot()["sim.core.rob.dispatched"])
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    NULL_REGISTRY,
    NULL_SCOPE,
    NullRegistry,
    NullScope,
    Registry,
    Scope,
    Timer,
    summarize,
)
from repro.obs.tracer import (
    DEFAULT_CAPACITY,
    EventTracer,
    NULL_TRACER,
    NullTracer,
)
from repro.obs.profiling import now_us, profiled, span


class Observability:
    """One registry + one tracer, threaded through ``obs=`` parameters."""

    def __init__(self, enabled: bool = True, trace: bool = False,
                 trace_capacity: int = DEFAULT_CAPACITY):
        self.enabled = enabled
        self.registry = Registry() if enabled else NULL_REGISTRY
        self.tracer = (EventTracer(capacity=trace_capacity)
                       if enabled and trace else NULL_TRACER)

    @property
    def tracing(self) -> bool:
        return self.tracer.enabled

    def scope(self, prefix: str = ""):
        return self.registry.scope(prefix)

    def snapshot(self) -> Dict[str, Any]:
        """Flat ``{dotted.path: instrument snapshot}`` of the registry."""
        return self.registry.snapshot()

    def export_trace(self, path, process_name: str = "repro") -> None:
        """Write the tracer's Chrome trace_event JSON to ``path``."""
        self.tracer.export(path, process_name=process_name)


#: The disabled singleton: what components see when nobody asked for
#: observability.  Shared, immutable, and free to hold.
OBS_OFF = Observability(enabled=False)

__all__ = [
    "Counter",
    "DEFAULT_CAPACITY",
    "EventTracer",
    "Gauge",
    "Histogram",
    "NULL_REGISTRY",
    "NULL_SCOPE",
    "NULL_TRACER",
    "NullRegistry",
    "NullScope",
    "NullTracer",
    "OBS_OFF",
    "Observability",
    "Registry",
    "Scope",
    "Timer",
    "now_us",
    "profiled",
    "span",
    "summarize",
]
