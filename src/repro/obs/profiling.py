"""Profiling hooks: wall-clock spans feeding timers and the tracer.

The engine and the experiment runner use these to attribute wall time
to named regions.  Everything degrades to (near) zero cost against the
null instruments from :mod:`repro.obs.registry` / :mod:`repro.obs.tracer`.
"""

from __future__ import annotations

import functools
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Optional

#: Per-process monotonic origin: trace timestamps are microseconds since
#: this module was first imported.  ``time.monotonic`` is CLOCK_MONOTONIC
#: on Linux (system-wide), so timestamps from pool workers on the same
#: machine line up with the parent's.
_ORIGIN = time.monotonic()


def now_us() -> float:
    """Microseconds since process-tree trace origin."""
    return (time.monotonic() - _ORIGIN) * 1e6


@contextmanager
def span(tracer, name: str, cat: str = "", tid: int = 0,
         args: Optional[Dict[str, Any]] = None,
         timer=None):
    """Emit a complete ('X') trace event around a code region.

    ``timer``, when given, also accumulates the duration into a
    registry :class:`~repro.obs.registry.Timer`.
    """
    t0 = time.monotonic()
    ts = (t0 - _ORIGIN) * 1e6
    try:
        yield
    finally:
        elapsed = time.monotonic() - t0
        tracer.complete(name, ts=ts, dur=elapsed * 1e6, cat=cat,
                        tid=tid, args=args)
        if timer is not None:
            timer.add(elapsed)


def profiled(scope, name: Optional[str] = None) -> Callable:
    """Decorator: time every call into ``scope.timer(name)`` and sample
    the per-call latency into ``scope.histogram(name + ".s")``."""

    def wrap(fn: Callable) -> Callable:
        label = name or fn.__name__
        timer = scope.timer(label)
        hist = scope.histogram(f"{label}.s")

        @functools.wraps(fn)
        def inner(*args, **kwargs):
            t0 = time.perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                elapsed = time.perf_counter() - t0
                timer.add(elapsed)
                hist.observe(elapsed)

        return inner

    return wrap
