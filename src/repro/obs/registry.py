"""Hierarchical instrument registry: counters, gauges, timers, histograms.

The registry is the passive half of the observability layer (the event
tracer in :mod:`repro.obs.tracer` is the active half).  Components
*attach* to a :class:`Scope` - a dotted-path view into one shared
:class:`Registry` - and either

* pre-bind :class:`Counter`/:class:`Timer`/:class:`Histogram` instruments
  at attach time (one attribute store, then ``inc()``/``observe()`` on
  the hot path), or
* register a :class:`Gauge` over an existing plain-``int`` statistic
  (``cache.hits`` and friends), which costs *nothing* on the hot path:
  the callable is only sampled when :meth:`Registry.snapshot` runs.

Overhead contract
-----------------
When observability is disabled every component holds the module-level
:data:`NULL_SCOPE` singleton instead of a real scope.  Its factory
methods return shared null instruments whose mutators are empty
one-liners, and gauge registration is a no-op - so the disabled fast
path is a single dynamically-dispatched no-op call at worst, and zero
work for gauge-instrumented components.  Nothing in this module ever
mutates the simulated or swept state, so enabling observability cannot
change results (regression-tested for bit-identity).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

#: Histograms keep at most this many raw samples; beyond it the sample
#: list is thinned deterministically (every other sample dropped) while
#: count/sum/min/max stay exact.
DEFAULT_HISTOGRAM_SAMPLES = 4096


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """Stable distribution summary used across metrics exports."""
    if not values:
        return {"count": 0, "mean": 0.0, "min": 0.0, "p50": 0.0,
                "p90": 0.0, "p99": 0.0, "max": 0.0}
    ordered = sorted(values)
    n = len(ordered)

    def pct(p: float) -> float:
        return ordered[min(n - 1, int(p * n))]

    return {
        "count": n,
        "mean": sum(ordered) / n,
        "min": ordered[0],
        "p50": pct(0.50),
        "p90": pct(0.90),
        "p99": pct(0.99),
        "max": ordered[-1],
    }


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def snapshot(self) -> Dict[str, Any]:
        return {"type": self.kind, "value": self.value}


class Gauge:
    """A value sampled from a callable only at snapshot time."""

    __slots__ = ("name", "fn")

    kind = "gauge"

    def __init__(self, name: str, fn: Callable[[], Any]):
        self.name = name
        self.fn = fn

    @property
    def value(self) -> Any:
        return self.fn()

    def snapshot(self) -> Dict[str, Any]:
        return {"type": self.kind, "value": self.fn()}


class Timer:
    """Accumulated wall time over a code region (context manager)."""

    __slots__ = ("name", "count", "total_s", "_t0")

    kind = "timer"

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total_s = 0.0
        self._t0 = 0.0

    def __enter__(self) -> "Timer":
        import time
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        import time
        self.total_s += time.perf_counter() - self._t0
        self.count += 1

    def add(self, seconds: float) -> None:
        """Record an externally measured duration."""
        self.total_s += seconds
        self.count += 1

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, Any]:
        return {"type": self.kind, "count": self.count,
                "total_s": self.total_s, "mean_s": self.mean_s}


class Histogram:
    """A bounded-memory value distribution.

    ``count``/``total``/``min``/``max`` are exact; quantiles come from a
    deterministically thinned sample list (no randomness, so repeated
    runs summarize identically).
    """

    __slots__ = ("name", "count", "total", "min", "max",
                 "_samples", "_max_samples", "_stride", "_skip")

    kind = "histogram"

    def __init__(self, name: str,
                 max_samples: int = DEFAULT_HISTOGRAM_SAMPLES):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._samples: List[float] = []
        self._max_samples = max_samples
        self._stride = 1  # keep every _stride'th observation
        self._skip = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if self._skip:
            self._skip -= 1
            return
        self._skip = self._stride - 1
        self._samples.append(value)
        if len(self._samples) >= self._max_samples:
            # Thin deterministically: drop every other retained sample.
            self._samples = self._samples[::2]
            self._stride *= 2

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        return ordered[min(len(ordered) - 1, int(p * len(ordered)))]

    def snapshot(self) -> Dict[str, Any]:
        out = summarize(self._samples)
        # Exact moments override the sampled approximations.
        out.update({
            "type": self.kind,
            "count": self.count,
            "mean": self.mean,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
        })
        return out


class Scope:
    """A dotted-path view into a registry that components attach to."""

    __slots__ = ("_registry", "_prefix")

    enabled = True

    def __init__(self, registry: "Registry", prefix: str = ""):
        self._registry = registry
        self._prefix = prefix

    def _path(self, name: str) -> str:
        return f"{self._prefix}.{name}" if self._prefix else name

    def scope(self, name: str) -> "Scope":
        return Scope(self._registry, self._path(name))

    def counter(self, name: str) -> Counter:
        return self._registry.counter(self._path(name))

    def gauge(self, name: str, fn: Callable[[], Any]) -> Gauge:
        return self._registry.gauge(self._path(name), fn)

    def timer(self, name: str) -> Timer:
        return self._registry.timer(self._path(name))

    def histogram(self, name: str,
                  max_samples: int = DEFAULT_HISTOGRAM_SAMPLES) -> Histogram:
        return self._registry.histogram(self._path(name),
                                        max_samples=max_samples)

    def info(self, name: str, value: Any) -> None:
        """Record static metadata (configuration, not measurement)."""
        self._registry.info(self._path(name), value)


class Registry:
    """Flat name -> instrument store with hierarchical dotted paths."""

    enabled = True

    def __init__(self) -> None:
        self._instruments: Dict[str, Any] = {}
        self._info: Dict[str, Any] = {}

    def _get_or_create(self, path: str, kind, *args):
        instrument = self._instruments.get(path)
        if instrument is None:
            instrument = kind(path, *args)
            self._instruments[path] = instrument
        elif not isinstance(instrument, kind):
            raise TypeError(
                f"{path!r} already registered as "
                f"{type(instrument).__name__}, not {kind.__name__}"
            )
        return instrument

    def scope(self, prefix: str = "") -> Scope:
        return Scope(self, prefix)

    def counter(self, path: str) -> Counter:
        return self._get_or_create(path, Counter)

    def gauge(self, path: str, fn: Callable[[], Any]) -> Gauge:
        gauge = Gauge(path, fn)
        self._instruments[path] = gauge  # rebinding a gauge is fine
        return gauge

    def timer(self, path: str) -> Timer:
        return self._get_or_create(path, Timer)

    def histogram(self, path: str,
                  max_samples: int = DEFAULT_HISTOGRAM_SAMPLES) -> Histogram:
        return self._get_or_create(path, Histogram, max_samples)

    def info(self, path: str, value: Any) -> None:
        self._info[path] = value

    def names(self) -> List[str]:
        return sorted(self._instruments)

    def get(self, path: str) -> Optional[Any]:
        return self._instruments.get(path)

    def snapshot(self) -> Dict[str, Any]:
        """``{path: instrument snapshot}``, plus an ``info`` section."""
        out: Dict[str, Any] = {
            path: self._instruments[path].snapshot()
            for path in sorted(self._instruments)
        }
        if self._info:
            out["info"] = dict(sorted(self._info.items()))
        return out

    def as_tree(self) -> Dict[str, Any]:
        """The snapshot nested by dotted-path components."""
        tree: Dict[str, Any] = {}
        for path, snap in self.snapshot().items():
            if path == "info":
                tree["info"] = snap
                continue
            node = tree
            parts = path.split(".")
            for part in parts[:-1]:
                node = node.setdefault(part, {})
            node[parts[-1]] = snap
        return tree


# ----------------------------------------------------------------------
# Null objects: the disabled fast path.
# ----------------------------------------------------------------------

class NullCounter:
    __slots__ = ()
    kind = "counter"
    name = "null"
    value = 0

    def inc(self, n: int = 1) -> None:
        pass

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "counter", "value": 0}


class NullTimer:
    __slots__ = ()
    kind = "timer"
    name = "null"
    count = 0
    total_s = 0.0
    mean_s = 0.0

    def __enter__(self) -> "NullTimer":
        return self

    def __exit__(self, *exc) -> None:
        pass

    def add(self, seconds: float) -> None:
        pass

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "timer", "count": 0, "total_s": 0.0, "mean_s": 0.0}


class NullHistogram:
    __slots__ = ()
    kind = "histogram"
    name = "null"
    count = 0
    total = 0.0
    mean = 0.0
    min = None
    max = None

    def observe(self, value: float) -> None:
        pass

    def percentile(self, p: float) -> float:
        return 0.0

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "histogram", "count": 0}


_NULL_COUNTER = NullCounter()
_NULL_TIMER = NullTimer()
_NULL_HISTOGRAM = NullHistogram()


class NullScope:
    """Shared do-nothing scope held by un-instrumented components."""

    __slots__ = ()

    enabled = False

    def scope(self, name: str) -> "NullScope":
        return self

    def counter(self, name: str) -> NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str, fn: Callable[[], Any]) -> None:
        return None

    def timer(self, name: str) -> NullTimer:
        return _NULL_TIMER

    def histogram(self, name: str, max_samples: int = 0) -> NullHistogram:
        return _NULL_HISTOGRAM

    def info(self, name: str, value: Any) -> None:
        pass


class NullRegistry:
    """Registry stand-in when observability is disabled."""

    __slots__ = ()

    enabled = False

    def scope(self, prefix: str = "") -> NullScope:
        return NULL_SCOPE

    def counter(self, path: str) -> NullCounter:
        return _NULL_COUNTER

    def gauge(self, path: str, fn: Callable[[], Any]) -> None:
        return None

    def timer(self, path: str) -> NullTimer:
        return _NULL_TIMER

    def histogram(self, path: str, max_samples: int = 0) -> NullHistogram:
        return _NULL_HISTOGRAM

    def info(self, path: str, value: Any) -> None:
        pass

    def names(self) -> List[str]:
        return []

    def get(self, path: str) -> None:
        return None

    def snapshot(self) -> Dict[str, Any]:
        return {}

    def as_tree(self) -> Dict[str, Any]:
        return {}


#: Module-level singletons - the null-object fast path.
NULL_SCOPE = NullScope()
NULL_REGISTRY = NullRegistry()
