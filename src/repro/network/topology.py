"""2-D mesh topology with dimension-order routing.

The Sharing Architecture fabric is a 2-D array of Slices and Cache Banks
(paper Figure 3) connected by switched interconnects.  Routing is X-then-Y
dimension order, matching the Tilera-style networks the paper models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

Coord = Tuple[int, int]


@dataclass(frozen=True)
class Mesh2D:
    """A ``width`` x ``height`` mesh of tiles addressed by integer node id.

    Node ids are row-major: node ``(x, y)`` has id ``y * width + x``.
    """

    width: int
    height: int

    def __post_init__(self) -> None:
        if self.width < 1 or self.height < 1:
            raise ValueError("mesh dimensions must be positive")

    @property
    def num_nodes(self) -> int:
        return self.width * self.height

    def contains(self, node: int) -> bool:
        return 0 <= node < self.num_nodes

    def coords(self, node: int) -> Coord:
        if not self.contains(node):
            raise ValueError(f"node {node} outside mesh of {self.num_nodes}")
        return node % self.width, node // self.width

    def node_at(self, x: int, y: int) -> int:
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ValueError(f"({x}, {y}) outside {self.width}x{self.height} mesh")
        return y * self.width + x

    def distance(self, src: int, dst: int) -> int:
        """Manhattan hop count between two nodes."""
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        return abs(sx - dx) + abs(sy - dy)

    def route(self, src: int, dst: int) -> List[Tuple[int, int]]:
        """Links traversed by X-then-Y dimension-order routing."""
        links: List[Tuple[int, int]] = []
        cur = src
        cx, cy = self.coords(src)
        dx, dy = self.coords(dst)
        while cx != dx:
            step = 1 if dx > cx else -1
            nxt = self.node_at(cx + step, cy)
            links.append((cur, nxt))
            cur, cx = nxt, cx + step
        while cy != dy:
            step = 1 if dy > cy else -1
            nxt = self.node_at(cx, cy + step)
            links.append((cur, nxt))
            cur, cy = nxt, cy + step
        return links

    def neighbors(self, node: int) -> Iterator[int]:
        x, y = self.coords(node)
        if x > 0:
            yield self.node_at(x - 1, y)
        if x < self.width - 1:
            yield self.node_at(x + 1, y)
        if y > 0:
            yield self.node_at(x, y - 1)
        if y < self.height - 1:
            yield self.node_at(x, y + 1)

    def row(self, y: int, start_x: int = 0, count: int = 0) -> List[int]:
        """Node ids of a contiguous horizontal run (VCore Slice placement)."""
        count = count or self.width - start_x
        if start_x + count > self.width:
            raise ValueError("row run exceeds mesh width")
        return [self.node_at(start_x + i, y) for i in range(count)]
