"""Switched network timing model.

Latency model (paper Section 3.4): "We model a two-cycle communication
cost between nearest neighbor Slices and an additional cycle for each
additional network hop, the same latency as on a Tilera processor."

So for a Manhattan distance of ``h`` hops the one-way latency is
``insertion_delay + per_hop * h`` with ``insertion_delay = 1`` and
``per_hop = 1`` (giving 2 cycles at h=1).  Local delivery (src == dst)
is free: the value stays in the Slice's own bypass network.

An optional contention model serialises flits per link: each link carries
one flit per cycle and messages queue for the earliest free slot along
their dimension-order route.  The paper found a single operand network
sufficient (a second one buys ~1%, Section 5.1); the contention model lets
the ablation benchmark reproduce that experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.network.messages import Message
from repro.network.topology import Mesh2D
from repro.obs.tracer import NULL_TRACER


@dataclass
class NetworkStats:
    """Aggregate traffic statistics for one network."""

    messages: int = 0
    total_hops: int = 0
    total_latency: int = 0
    contention_cycles: int = 0

    def record(self, hops: int, latency: int, queued: int) -> None:
        self.messages += 1
        self.total_hops += hops
        self.total_latency += latency
        self.contention_cycles += queued

    @property
    def mean_latency(self) -> float:
        return self.total_latency / self.messages if self.messages else 0.0

    @property
    def mean_hops(self) -> float:
        return self.total_hops / self.messages if self.messages else 0.0


class SwitchedNetwork:
    """One of the dedicated 2-D switched interconnects."""

    def __init__(
        self,
        mesh: Mesh2D,
        name: str = "network",
        insertion_delay: int = 1,
        per_hop: int = 1,
        model_contention: bool = False,
        channels: int = 1,
    ):
        if insertion_delay < 0 or per_hop < 0:
            raise ValueError("delays must be non-negative")
        if channels < 1:
            raise ValueError("need at least one channel")
        self.mesh = mesh
        self.name = name
        self.insertion_delay = insertion_delay
        self.per_hop = per_hop
        self.model_contention = model_contention
        self.channels = channels
        self.stats = NetworkStats()
        self._tracer = NULL_TRACER
        # link -> next cycle at which each channel of the link is free
        self._link_free: Dict[Tuple[int, int], list] = {}

    def attach_obs(self, scope, tracer=NULL_TRACER) -> None:
        """Attach traffic gauges and (optionally) an event tracer.

        With a live tracer every :meth:`send` emits one complete span
        (``cat="network"``, ``ts`` = injection cycle, ``dur`` = transit
        latency) so SON traffic shows up as lanes in Perfetto.
        """
        self._tracer = tracer
        scope.gauge("messages", lambda: self.stats.messages)
        scope.gauge("total_hops", lambda: self.stats.total_hops)
        scope.gauge("mean_latency", lambda: self.stats.mean_latency)
        scope.gauge("mean_hops", lambda: self.stats.mean_hops)
        scope.gauge("contention_cycles",
                    lambda: self.stats.contention_cycles)
        scope.info("insertion_delay", self.insertion_delay)
        scope.info("per_hop", self.per_hop)
        scope.info("channels", self.channels)

    def latency(self, src: int, dst: int) -> int:
        """Unloaded one-way latency from ``src`` to ``dst``."""
        if src == dst:
            return 0
        hops = self.mesh.distance(src, dst)
        return self.insertion_delay + self.per_hop * hops

    def send(self, message: Message, now: Optional[int] = None) -> int:
        """Inject ``message``; returns its arrival cycle at the destination."""
        start = message.sent_cycle if now is None else now
        src, dst = message.src, message.dst
        if src == dst:
            self.stats.record(hops=0, latency=0, queued=0)
            return start
        hops = self.mesh.distance(src, dst)
        unloaded = self.insertion_delay + self.per_hop * hops
        if not self.model_contention:
            self.stats.record(hops=hops, latency=unloaded, queued=0)
            self._tracer.complete(
                f"{self.name}.msg", ts=start, dur=unloaded, cat="network",
                tid=src, args={"dst": dst, "hops": hops},
            )
            return start + unloaded
        arrival, queued = self._send_contended(src, dst, start)
        self.stats.record(hops=hops, latency=arrival - start, queued=queued)
        self._tracer.complete(
            f"{self.name}.msg", ts=start, dur=arrival - start, cat="network",
            tid=src, args={"dst": dst, "hops": hops, "queued": queued},
        )
        return arrival

    def _send_contended(self, src: int, dst: int, start: int) -> Tuple[int, int]:
        """Walk the route claiming one flit slot per link per cycle."""
        t = start + self.insertion_delay
        queued = 0
        for link in self.mesh.route(src, dst):
            free = self._link_free.setdefault(link, [0] * self.channels)
            # Pick the channel that frees up earliest.
            best = min(range(self.channels), key=lambda ch: free[ch])
            depart = max(t, free[best])
            queued += depart - t
            free[best] = depart + 1
            t = depart + self.per_hop
        return t, queued

    def reset_stats(self) -> None:
        self.stats = NetworkStats()
        self._link_free.clear()
