"""On-chip interconnect substrate.

The Sharing Architecture relies on three dedicated 2-D switched networks
(paper Section 5.1): a Scalar Operand Network for operand request/reply
traffic, a load/store sorting network, and a global-rename network.  All
three share the latency model of the Raw/Tilera on-chip networks the paper
adopts (Section 3.4): two cycles between nearest-neighbour Slices plus one
cycle for each additional hop.
"""

from repro.network.topology import Mesh2D, Coord
from repro.network.messages import (
    Message,
    MessageKind,
    OperandRequest,
    OperandReply,
    WakeupSignal,
    RenameBroadcast,
    MemSortMessage,
    CacheRequest,
    CacheReply,
)
from repro.network.switched import SwitchedNetwork, NetworkStats

__all__ = [
    "Mesh2D",
    "Coord",
    "Message",
    "MessageKind",
    "OperandRequest",
    "OperandReply",
    "WakeupSignal",
    "RenameBroadcast",
    "MemSortMessage",
    "CacheRequest",
    "CacheReply",
    "SwitchedNetwork",
    "NetworkStats",
]
