"""Typed messages carried on the three Sharing Architecture networks.

Paper Section 5.1: "there are three dedicated networks modeled for
different purposes (operand network, load/store sorting, and global
renaming)".  The cache hierarchy additionally uses the switched dynamic
network for L1-miss traffic (Section 3.5).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class MessageKind(enum.Enum):
    OPERAND_REQUEST = "operand_request"
    OPERAND_REPLY = "operand_reply"
    WAKEUP = "wakeup"
    RENAME_BROADCAST = "rename_broadcast"
    MEM_SORT = "mem_sort"
    CACHE_REQUEST = "cache_request"
    CACHE_REPLY = "cache_reply"
    MISPREDICT_FLUSH = "mispredict_flush"


@dataclass(frozen=True)
class Message:
    """Base network message: source/destination node ids plus send time."""

    src: int
    dst: int
    sent_cycle: int

    #: Overridden by each concrete message type.
    kind = MessageKind.OPERAND_REQUEST

    def __post_init__(self) -> None:
        if self.sent_cycle < 0:
            raise ValueError("messages cannot be sent before cycle 0")


@dataclass(frozen=True)
class OperandRequest(Message):
    """Request for the value of a global logical register held remotely."""

    global_reg: int = 0
    consumer_seq: int = 0
    kind = MessageKind.OPERAND_REQUEST


@dataclass(frozen=True)
class OperandReply(Message):
    """Reply carrying a produced operand value back to the requester."""

    global_reg: int = 0
    consumer_seq: int = 0
    kind = MessageKind.OPERAND_REPLY


@dataclass(frozen=True)
class WakeupSignal(Message):
    """One-cycle-early wakeup: the remote producer has issued.

    Paper Section 3.3: a wake-up signal is sent when the producing
    instruction issues, the cycle before it executes, so the consumer can
    leave the issue window just in time for the arriving operand.
    """

    global_reg: int = 0
    kind = MessageKind.WAKEUP


@dataclass(frozen=True)
class RenameBroadcast(Message):
    """Master-Slice broadcast of a rename mapping (arch -> global)."""

    arch_reg: int = 0
    global_reg: int = 0
    producer_seq: int = 0
    kind = MessageKind.RENAME_BROADCAST


@dataclass(frozen=True)
class MemSortMessage(Message):
    """A load/store routed to its address-interleaved home Slice."""

    address: int = 0
    is_store: bool = False
    inst_seq: int = 0
    kind = MessageKind.MEM_SORT


@dataclass(frozen=True)
class CacheRequest(Message):
    """L1-miss request to a remote L2 bank."""

    address: int = 0
    is_write: bool = False
    kind = MessageKind.CACHE_REQUEST


@dataclass(frozen=True)
class CacheReply(Message):
    """Fill data returning from an L2 bank (or from memory via the bank)."""

    address: int = 0
    hit: bool = True
    kind = MessageKind.CACHE_REPLY
