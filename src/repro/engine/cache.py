"""Content-addressed on-disk result cache for sweep evaluations.

Every cache entry is keyed by the SHA-256 of a canonical JSON encoding
of *everything the result depends on*: the cache schema version, the
evaluation kind, the analytic model's calibration constants, the
benchmark profile's field values, and the configuration tuple (grids,
utility, market, budget).  Change any of those - including a calibration
constant in :mod:`repro.perfmodel.model` - and the key changes, so stale
entries are never served; they are simply orphaned under the old key.

Entries live under ``.repro_cache/v<N>/<kk>/<key>.json`` (override the
root with ``REPRO_CACHE_DIR`` or the runner's ``--cache-dir``).  Writes
are atomic (temp file + ``os.replace``) so concurrent worker processes
and runs never observe torn entries; corrupt or unreadable entries are
counted (``counters()["corrupt"]``), unlinked, and treated as misses.

Hits resolve against a shared **index**: one append-only manifest,
``v<N>/index.jsonl``, holding one JSON line per published entry.  A
sweep loads it once and answers every lookup from an in-memory set
instead of paying a per-unit ``open()`` probe; appends are single
``O_APPEND`` writes (atomic on POSIX regular files), and a reader that
sees a torn final line simply ignores it until the next refresh.  The
index is pure acceleration: it can be deleted at any time and is
rebuilt from the entry files on the next load, reproducing identical
hit behaviour.  ``refresh_index()`` tails new appends from other
processes, which is how concurrent sweeps on one box observe each
other's results; in-flight **claim** files
(:class:`~repro.engine.claims.ClaimBox` under ``claims/``) let those
sweeps dedupe identical units instead of racing to evaluate them.

``python -m repro.experiments.runner --no-cache`` bypasses the cache
entirely; delete the directory (or call :meth:`ResultCache.clear`) to
drop it.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
from pathlib import Path
from typing import Any, Mapping, Optional, Set

from repro.engine.claims import ClaimBox

#: Bump when the stored value layout (not the inputs) changes shape.
CACHE_VERSION = 1

#: Default cache root, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro_cache"


def canonical_key(payload: Mapping[str, Any]) -> str:
    """SHA-256 over a canonical (sorted, compact) JSON encoding."""
    encoded = json.dumps(
        {"cache_version": CACHE_VERSION, **payload},
        sort_keys=True,
        separators=(",", ":"),
        default=str,
    )
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


class ResultCache:
    """Persistent key/value store for evaluated sweep work units.

    Values must be JSON-serialisable; callers are responsible for
    encoding tuples/dicts into JSON-stable shapes (the engine stores
    ``[[cache_kb, slices, value], ...]`` row lists).
    """

    def __init__(self, root: Optional[os.PathLike] = None,
                 enabled: bool = True):
        env_root = os.environ.get("REPRO_CACHE_DIR")
        self.root = Path(root if root is not None
                         else (env_root or DEFAULT_CACHE_DIR))
        self.enabled = enabled
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.corrupt = 0
        #: In-flight unit claims: concurrent sweeps on one box dedupe
        #: identical pending units through these (see ``SweepEngine``).
        self.claims = ClaimBox(self.root / "claims")
        self._index: Optional[Set[str]] = None
        self._index_offset = 0

    # ------------------------------------------------------------------
    # key construction
    # ------------------------------------------------------------------

    @staticmethod
    def make_key(payload: Mapping[str, Any]) -> str:
        """Content-address a key-field mapping (see :func:`canonical_key`)."""
        return canonical_key(payload)

    def _path_for(self, key: str) -> Path:
        return self.root / f"v{CACHE_VERSION}" / key[:2] / f"{key}.json"

    @property
    def index_path(self) -> Path:
        return self.root / f"v{CACHE_VERSION}" / "index.jsonl"

    # ------------------------------------------------------------------
    # store operations
    # ------------------------------------------------------------------

    def get(self, key: str) -> Optional[Any]:
        """The cached value for ``key``, or ``None`` on a miss.

        Resolved through the in-memory index (one set lookup) - entries
        published by other processes since the last
        :meth:`refresh_index` are not visible until the next refresh.
        Corrupt entries are unlinked and counted.
        """
        if not self.enabled:
            return None
        index = self._load_index()
        if key not in index:
            self.misses += 1
            return None
        path = self._path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
            value = entry["value"]
        except FileNotFoundError:
            # Entry removed behind the index (a clear, or another
            # reader's quarantine): a plain miss, not corruption.
            index.discard(key)
            self.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError):
            # Poison entry: quarantine it so the recompute can repair
            # the cache instead of tripping on it forever.
            self.corrupt += 1
            self.misses += 1
            index.discard(key)
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        self.hits += 1
        return value

    def contains(self, key: str) -> bool:
        """Whether ``key`` is published, per the in-memory index.

        Pure lookup: no hit/miss counters move, no file is touched.
        Pair with :meth:`refresh_index` when polling for entries being
        published by a concurrent process.
        """
        if not self.enabled:
            return False
        return key in self._load_index()

    def put(self, key: str, value: Any,
            key_fields: Optional[Mapping[str, Any]] = None) -> None:
        """Store ``value`` under ``key`` atomically.

        ``key_fields``, when given, is written alongside the value so a
        human inspecting ``.repro_cache/`` can see what an entry is.
        The entry file is published first, then the key is appended to
        the index - a crash in between leaves a valid entry that the
        next index rebuild picks up.
        """
        if not self.enabled:
            return
        path = self._path_for(key)
        entry = {"key": key, "value": value}
        if key_fields is not None:
            entry["key_fields"] = dict(key_fields)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=str(path.parent), suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(entry, handle, default=str)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError:
            # A read-only or full filesystem degrades to compute-only.
            return
        self.puts += 1
        self._append_index(key)

    def clear(self) -> int:
        """Delete every cached entry (all schema versions); returns count.

        Index files and claim dirs are dropped too (they are derived
        state, not entries, so they don't contribute to the count).
        """
        removed = 0
        if not self.root.exists():
            self._index = set()
            self._index_offset = 0
            return removed
        for path in sorted(self.root.rglob("*.json")):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        for path in sorted(self.root.glob("v*/index.jsonl")):
            try:
                path.unlink()
            except OSError:
                pass
        shutil.rmtree(self.claims.root, ignore_errors=True)
        self._index = set()
        self._index_offset = 0
        return removed

    # ------------------------------------------------------------------
    # the shared index
    # ------------------------------------------------------------------

    def _load_index(self) -> Set[str]:
        """The in-memory key set, loaded (or rebuilt) on first use."""
        if self._index is not None:
            return self._index
        self._index = set()
        self._index_offset = 0
        if not self.index_path.exists():
            # No manifest but entries on disk (pre-index cache dir, or
            # a deleted index): rebuild so hit behaviour is identical.
            if self._scan_entry_keys():
                self.rebuild_index()
            return self._index
        self.refresh_index()
        return self._index

    def refresh_index(self) -> int:
        """Tail newly appended index lines; returns keys added.

        Reads from the last consumed byte offset, so polling is one
        ``seek`` + short read regardless of index size.  A torn final
        line (a concurrent append in flight) is left un-consumed and
        picked up complete on the next refresh - readers never observe
        a partial record.
        """
        if self._index is None:
            self._load_index()
            return len(self._index or ())
        added = 0
        try:
            with open(self.index_path, "rb") as handle:
                handle.seek(self._index_offset)
                chunk = handle.read()
        except OSError:
            return 0
        consumed = 0
        while True:
            newline = chunk.find(b"\n", consumed)
            if newline < 0:
                # Torn final line (a concurrent append in flight): it
                # stays un-consumed and is re-read complete next time.
                break
            line = chunk[consumed:newline]
            consumed = newline + 1
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            key = record.get("key") if isinstance(record, dict) else None
            if key:
                if key not in self._index:
                    added += 1
                self._index.add(key)
        self._index_offset += consumed
        return added

    def rebuild_index(self) -> int:
        """Regenerate ``index.jsonl`` from the entry files; returns the
        number of entries indexed.

        The index is derived state - this scan is the source of truth -
        so a lost or damaged manifest can always be replaced with one
        that reproduces identical hit behaviour.
        """
        keys = self._scan_entry_keys()
        path = self.index_path
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(dir=str(path.parent),
                                            suffix=".tmp")
            size = 0
            try:
                with os.fdopen(fd, "wb") as handle:
                    for key in sorted(keys):
                        line = json.dumps(
                            {"key": key}, separators=(",", ":")
                        ).encode("utf-8") + b"\n"
                        handle.write(line)
                        size += len(line)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError:
            self._index = keys
            self._index_offset = 0
            return len(keys)
        self._index = keys
        self._index_offset = size
        return len(keys)

    def _scan_entry_keys(self) -> Set[str]:
        version_dir = self.root / f"v{CACHE_VERSION}"
        if not version_dir.exists():
            return set()
        return {
            path.stem
            for path in version_dir.glob("??/*.json")
        }

    def _append_index(self, key: str) -> None:
        """Publish ``key`` to the shared manifest: one ``O_APPEND``
        write of one complete line, atomic for concurrent appenders."""
        if self._index is not None:
            self._index.add(key)
        line = json.dumps({"key": key},
                          separators=(",", ":")).encode("utf-8") + b"\n"
        try:
            fd = os.open(self.index_path,
                         os.O_WRONLY | os.O_CREAT | os.O_APPEND)
            try:
                os.write(fd, line)
            finally:
                os.close(fd)
        except OSError:
            pass
        # The byte offset is *not* advanced: our line (and any lines
        # racing in around it) will be consumed by the next refresh;
        # re-reading our own append is a harmless set re-add.

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def counters(self) -> Mapping[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "puts": self.puts, "corrupt": self.corrupt}

    def attach_obs(self, scope) -> None:
        """Register the cache counters on a ``repro.obs`` scope."""
        scope.gauge("hits", lambda: self.hits)
        scope.gauge("misses", lambda: self.misses)
        scope.gauge("puts", lambda: self.puts)
        scope.gauge("corrupt", lambda: self.corrupt)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "on" if self.enabled else "off"
        return (f"ResultCache({str(self.root)!r}, {state}, "
                f"hits={self.hits}, misses={self.misses})")
