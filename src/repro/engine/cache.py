"""Content-addressed on-disk result cache for sweep evaluations.

Every cache entry is keyed by the SHA-256 of a canonical JSON encoding
of *everything the result depends on*: the cache schema version, the
evaluation kind, the analytic model's calibration constants, the
benchmark profile's field values, and the configuration tuple (grids,
utility, market, budget).  Change any of those - including a calibration
constant in :mod:`repro.perfmodel.model` - and the key changes, so stale
entries are never served; they are simply orphaned under the old key.

Entries live under ``.repro_cache/v<N>/<kk>/<key>.json`` (override the
root with ``REPRO_CACHE_DIR`` or the runner's ``--cache-dir``).  Writes
are atomic (temp file + ``os.replace``) so concurrent worker processes
and runs never observe torn entries; corrupt or unreadable entries are
treated as misses.  ``python -m repro.experiments.runner --no-cache``
bypasses the cache entirely; delete the directory (or call
:meth:`ResultCache.clear`) to drop it.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Mapping, Optional

#: Bump when the stored value layout (not the inputs) changes shape.
CACHE_VERSION = 1

#: Default cache root, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro_cache"


def canonical_key(payload: Mapping[str, Any]) -> str:
    """SHA-256 over a canonical (sorted, compact) JSON encoding."""
    encoded = json.dumps(
        {"cache_version": CACHE_VERSION, **payload},
        sort_keys=True,
        separators=(",", ":"),
        default=str,
    )
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


class ResultCache:
    """Persistent key/value store for evaluated sweep work units.

    Values must be JSON-serialisable; callers are responsible for
    encoding tuples/dicts into JSON-stable shapes (the engine stores
    ``[[cache_kb, slices, value], ...]`` row lists).
    """

    def __init__(self, root: Optional[os.PathLike] = None,
                 enabled: bool = True):
        env_root = os.environ.get("REPRO_CACHE_DIR")
        self.root = Path(root if root is not None
                         else (env_root or DEFAULT_CACHE_DIR))
        self.enabled = enabled
        self.hits = 0
        self.misses = 0
        self.puts = 0

    # ------------------------------------------------------------------
    # key construction
    # ------------------------------------------------------------------

    @staticmethod
    def make_key(payload: Mapping[str, Any]) -> str:
        """Content-address a key-field mapping (see :func:`canonical_key`)."""
        return canonical_key(payload)

    def _path_for(self, key: str) -> Path:
        return self.root / f"v{CACHE_VERSION}" / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------
    # store operations
    # ------------------------------------------------------------------

    def get(self, key: str) -> Optional[Any]:
        """The cached value for ``key``, or ``None`` on a miss."""
        if not self.enabled:
            return None
        path = self._path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
            value = entry["value"]
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return value

    def put(self, key: str, value: Any,
            key_fields: Optional[Mapping[str, Any]] = None) -> None:
        """Store ``value`` under ``key`` atomically.

        ``key_fields``, when given, is written alongside the value so a
        human inspecting ``.repro_cache/`` can see what an entry is.
        """
        if not self.enabled:
            return
        path = self._path_for(key)
        entry = {"key": key, "value": value}
        if key_fields is not None:
            entry["key_fields"] = dict(key_fields)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=str(path.parent), suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(entry, handle, default=str)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError:
            # A read-only or full filesystem degrades to compute-only.
            return
        self.puts += 1

    def clear(self) -> int:
        """Delete every cached entry (all schema versions); returns count."""
        removed = 0
        if not self.root.exists():
            return removed
        for path in sorted(self.root.rglob("*.json")):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def counters(self) -> Mapping[str, int]:
        return {"hits": self.hits, "misses": self.misses, "puts": self.puts}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "on" if self.enabled else "off"
        return (f"ResultCache({str(self.root)!r}, {state}, "
                f"hits={self.hits}, misses={self.misses})")
