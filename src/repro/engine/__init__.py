"""Parallel sweep engine with a persistent, content-addressed cache.

Quickstart::

    from repro.engine import SweepEngine, SweepSpec

    engine = SweepEngine(jobs=4)
    sweep = engine.performance_map(["gcc", "bzip"])
    print(sweep.grid("gcc")[(512.0, 4)])

    # Drop-in model for any API taking ``model=``:
    model = engine.grid_model(profiles=["gcc"])
    print(model.speedup("gcc", 128.0, 4))

See DESIGN.md ("The sweep engine") for the sweep-spec -> work-unit ->
pool -> cache pipeline and cache-invalidation rules.
"""

from repro.engine.cache import CACHE_VERSION, DEFAULT_CACHE_DIR, ResultCache
from repro.engine.claims import ClaimBox
from repro.engine.store import (
    DEFAULT_STORE_DIRNAME,
    WorkloadStore,
    get_store,
    store_counters,
    store_key,
)
from repro.engine.core import (
    DEFAULT_PARALLEL_THRESHOLD,
    GridModel,
    SweepEngine,
    SweepResult,
    SweepSpec,
    SweepTimeoutError,
    WorkUnit,
    WorkUnitError,
    evaluate_unit,
    model_calibration,
)
from repro.engine.metrics import (
    EngineMetrics,
    RunMetrics,
    SweepRecord,
    UnitStat,
)

__all__ = [
    "CACHE_VERSION",
    "ClaimBox",
    "DEFAULT_CACHE_DIR",
    "DEFAULT_PARALLEL_THRESHOLD",
    "DEFAULT_STORE_DIRNAME",
    "EngineMetrics",
    "GridModel",
    "ResultCache",
    "RunMetrics",
    "SweepEngine",
    "SweepRecord",
    "SweepResult",
    "SweepSpec",
    "SweepTimeoutError",
    "UnitStat",
    "WorkUnit",
    "WorkUnitError",
    "WorkloadStore",
    "evaluate_unit",
    "get_store",
    "model_calibration",
    "store_counters",
    "store_key",
]
