"""In-flight claim files: single-box work dedupe for stores and caches.

A *claim* marks a piece of content-addressed work (generating a
workload, evaluating a work unit) as in flight, so concurrent processes
on one box wait for the winner's published result instead of redoing
the work.  Claims are plain files created with ``O_EXCL`` - the atomic
create is the lock - holding the owner pid and a wall-clock timestamp.

A claim is *stale* (and may be broken by any contender) when its owner
process is dead or the claim is older than ``ttl_s``; both cover the
crashed-worker case, so a dead worker can never wedge later sweeps.
Breaking a claim is best-effort: two contenders may race on the unlink,
but the follow-up ``O_EXCL`` create still admits exactly one winner.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Dict, Optional

#: Claims older than this are presumed abandoned even if the owner pid
#: is alive (the owner may be wedged, or the pid recycled).
DEFAULT_CLAIM_TTL_S = 900.0


def pid_alive(pid: int) -> bool:
    """Best-effort liveness probe for a same-box process."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - other-uid process
        return True
    except OSError:  # pragma: no cover - exotic platforms
        return True
    return True


class ClaimBox:
    """A directory of ``<key>.claim`` files with expiry semantics."""

    def __init__(self, root: os.PathLike, ttl_s: float = DEFAULT_CLAIM_TTL_S):
        self.root = Path(root)
        self.ttl_s = float(ttl_s)

    def path(self, key: str) -> Path:
        return self.root / f"{key}.claim"

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def acquire(self, key: str) -> bool:
        """Try to claim ``key``; breaks a stale claim first.

        Returns ``True`` when this process now owns the claim.  Any
        filesystem error degrades to ``True`` (claiming is an
        optimisation - work must proceed without it).
        """
        path = self.path(key)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError:
            return True
        for _ in range(2):
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                info = self._read(path)
                if info is not None and not self._stale(info):
                    return False
                # Stale (or unreadable) claim: break it and retry the
                # exclusive create; losing the unlink race is fine.
                try:
                    os.unlink(path)
                except OSError:
                    return False
                continue
            except OSError:
                return True
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump({"pid": os.getpid(), "ts": time.time()},
                              handle)
            except OSError:  # pragma: no cover - disk full mid-claim
                pass
            return True
        return False

    def release(self, key: str) -> None:
        """Drop the claim on ``key`` (idempotent)."""
        try:
            os.unlink(self.path(key))
        except OSError:
            pass

    def active(self, key: str) -> bool:
        """True while ``key`` is claimed by a live, fresh owner."""
        info = self._read(self.path(key))
        return info is not None and not self._stale(info)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _stale(self, info: Dict[str, Any]) -> bool:
        age = time.time() - float(info.get("ts", 0.0))
        if age > self.ttl_s:
            return True
        return not pid_alive(int(info.get("pid", 0)))

    @staticmethod
    def _read(path: Path) -> Optional[Dict[str, Any]]:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, ValueError):
            # Unreadable/torn claims look stale after a grace period;
            # report them as empty (-> stale via pid 0) so a contender
            # can break them rather than wait forever.
            try:
                if (path.exists()
                        and time.time() - path.stat().st_mtime < 2.0):
                    return {"pid": os.getpid(), "ts": time.time()}
            except OSError:
                pass
            return None
