"""The sweep engine: grid expansion, parallel fan-out, cached results.

The paper's evaluation is an exhaustive sweep machine: every figure and
table re-evaluates ``P(c, s)`` (and utilities on top of it) over the
Equation 3 grid.  :class:`SweepEngine` centralises that:

1. a :class:`SweepSpec` names the axes - benchmarks x cache_kb x slices,
   optionally x utility x market - and expands into :class:`WorkUnit`\\ s,
   one per (benchmark[, utility, market]) chunk over the config grid;
2. work units fan across a ``concurrent.futures.ProcessPoolExecutor``
   with chunking, falling back to in-process serial evaluation for small
   grids (pool startup costs more than tiny sweeps);
3. every unit is backed by the content-addressed on-disk
   :class:`~repro.engine.cache.ResultCache` - warm runs skip evaluation
   entirely;
4. every sweep is recorded in :class:`~repro.engine.metrics.EngineMetrics`
   (units, points, hits/misses, wall time, workers).

Experiments usually do not call :meth:`SweepEngine.run` directly; they
take a :class:`GridModel` from :meth:`SweepEngine.grid_model` - an
:class:`~repro.perfmodel.model.AnalyticModel` drop-in whose
``performance()`` serves from an engine-filled table - and pass it down
existing ``model=`` parameters.
"""

from __future__ import annotations

import os
import time
import traceback as _traceback
from collections import OrderedDict
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    wait as futures_wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import (
    Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple,
)

from repro.engine.cache import ResultCache
from repro.engine.metrics import EngineMetrics, SweepRecord, UnitStat
from repro.obs import OBS_OFF, Observability, now_us
from repro.perfmodel.model import (
    AnalyticModel,
    CACHE_GRID_KB,
    ProfileLike,
    SLICE_GRID,
    calibration_constants,
    profile_key,
)
from repro.trace.profiles import BenchmarkProfile

#: Below this many pending grid points a sweep runs serially in-process;
#: process-pool startup dwarfs the evaluation for small grids.
DEFAULT_PARALLEL_THRESHOLD = 1024

#: How many fresh pools a sweep tries after a worker process dies
#: (``BrokenProcessPool``) before giving up on the remaining units.
DEFAULT_POOL_RETRIES = 2

#: First retry delay after a worker death; doubles per retry, capped.
POOL_RETRY_BACKOFF_S = 0.05
POOL_RETRY_BACKOFF_CAP_S = 1.0

#: How often the scheduler's wait loop wakes to check deadlines and
#: straggling batches.
POOL_POLL_S = 0.05

#: A still-running batch is re-dispatched to an idle worker once its
#: wall time exceeds ``max(straggler_min_s, straggler_factor x median
#: completed-batch wall)``.  First completion wins; results are
#: bit-identical either way, so speculation is always safe.
DEFAULT_STRAGGLER_FACTOR = 4.0
DEFAULT_STRAGGLER_MIN_S = 1.0

#: Upper bound on how long a sweep waits for a *concurrent* sweep that
#: claimed one of its units before giving up and evaluating locally
#: (``timeout_s``, when set, takes precedence).
DEDUPE_WAIT_CAP_S = 600.0
_DEDUPE_POLL_S = 0.01

#: Prior cost (seconds per point) per unit kind, used to order batches
#: heaviest-first before any telemetry exists; replaced by a live EMA
#: of observed eval rates as outcomes arrive.
_COST_PRIOR = {
    "simulation": 0.5,
    "service": 1e-4,
    "performance": 2e-5,
    "utility": 2e-5,
}

KindKey = Tuple[Any, ...]


class WorkUnitError(RuntimeError):
    """A work unit failed inside a pool worker.

    Carries the failing unit and the worker's formatted traceback as
    attributes; ``str(exc)`` stays a one-line human-readable summary
    (never a pickled traceback blob).  Failed units are never written to
    the on-disk result cache.
    """

    def __init__(self, message: str, unit: Optional["WorkUnit"] = None,
                 worker_pid: int = 0, worker_traceback: str = ""):
        super().__init__(message)
        self.unit = unit
        self.worker_pid = worker_pid
        self.worker_traceback = worker_traceback


class SweepTimeoutError(RuntimeError):
    """A parallel sweep did not finish inside ``timeout_s``.

    The engine cancels queued units and terminates the stuck worker
    processes before raising, so a hung unit cannot wedge the caller.
    """

    def __init__(self, message: str,
                 pending_units: Tuple["WorkUnit", ...] = ()):
        super().__init__(message)
        self.pending_units = pending_units


def _norm_utility(utility: Any) -> Tuple[str, float]:
    """(name, perf_exponent) from a UtilityFunction-like object."""
    return (str(utility.name), float(utility.perf_exponent))


def _norm_market(market: Any) -> Tuple[str, float, float, float]:
    """(name, slice_price, bank_price, fixed_cost) from a Market-like."""
    return (str(market.name), float(market.slice_price),
            float(market.bank_price), float(market.fixed_cost))


@dataclass(frozen=True)
class WorkUnit:
    """One schedulable evaluation: a config grid for one benchmark
    (optionally under one utility function in one market, or through
    the cycle-level simulator for ``kind="simulation"``).

    All fields are primitives (plus the frozen, picklable
    :class:`~repro.core.config.SimConfig` for simulation units), so
    units pickle cheaply to workers and hash deterministically into
    cache keys.
    """

    kind: str  # "performance" | "utility" | "simulation" | "service"
    profile_fields: Tuple[Tuple[str, Any], ...]
    cache_grid: Tuple[float, ...]
    slice_grid: Tuple[int, ...]
    calibration: Tuple[Tuple[str, float], ...]
    utility: Optional[Tuple[str, float]] = None
    market: Optional[Tuple[str, float, float, float]] = None
    budget: float = 0.0
    #: Simulation-unit parameters; inert for analytic kinds.
    trace_length: int = 0
    trace_seed: int = 1
    sim_config: Any = None  # Optional[SimConfig]
    #: ``SamplingConfig.key_fields()`` as a sorted item tuple; ``None``
    #: runs exact.  Part of the cache key, so sampled and exact results
    #: can never alias.
    sampling: Optional[Tuple[Tuple[str, Any], ...]] = None
    #: Evaluation backend for utility units ("python" | "numpy").
    #: Always part of the cache key so scalar and vectorized results
    #: can never alias; performance/simulation units stay "python"
    #: (the backend cannot affect them, and a no-op axis would cold
    #: their cache entries for nothing).
    backend: str = "python"
    #: Streaming-service shard parameters as a sorted item tuple
    #: (``kind="service"``); inert ``None`` for grid kinds.
    service: Optional[Tuple[Tuple[str, Any], ...]] = None
    #: Which shard of the sharded stream this unit drives.
    shard: int = 0

    @property
    def benchmark(self) -> str:
        return dict(self.profile_fields)["name"]

    @property
    def points(self) -> int:
        if self.kind == "service":
            # Events, not grid cells, are the unit of work for a
            # stream shard - this is what the parallel threshold and
            # the metrics ledger should count.
            return int(dict(self.service or ()).get("num_events", 1))
        return len(self.cache_grid) * len(self.slice_grid)

    def result_key(self) -> KindKey:
        """How this unit's grid is addressed in a :class:`SweepResult`."""
        if self.kind in ("performance", "simulation", "service"):
            return (self.benchmark,)
        return (self.benchmark, self.utility[0], self.market[0])

    def key_fields(self) -> Dict[str, Any]:
        """The full content-address basis for the on-disk cache.

        Every result-affecting field is present *unconditionally* (the
        simulation fields hold inert defaults for analytic kinds), and
        the :class:`SimConfig` enters via :meth:`SimConfig.fingerprint`
        - a recursive walk over its dataclass fields - so a config knob
        added later cannot silently alias cache entries.
        """
        from repro.core.config import SimConfig

        sim_config = self.sim_config
        if sim_config is None and self.kind == "simulation":
            sim_config = SimConfig()
        return {
            "kind": self.kind,
            "profile": list(self.profile_fields),
            "cache_grid": list(self.cache_grid),
            "slice_grid": list(self.slice_grid),
            "calibration": list(self.calibration),
            "utility": list(self.utility) if self.utility else None,
            "market": list(self.market) if self.market else None,
            "budget": self.budget,
            "trace_length": self.trace_length,
            "trace_seed": self.trace_seed,
            "sim_config": (sim_config.fingerprint()
                           if sim_config is not None else None),
            "sampling": (list(self.sampling)
                         if self.sampling is not None else None),
            "backend": self.backend,
            "service": (list(self.service)
                        if self.service is not None else None),
            "shard": self.shard,
        }

    def cache_key(self) -> str:
        return ResultCache.make_key(self.key_fields())


@dataclass(frozen=True)
class SweepSpec:
    """Axes of one sweep: benchmarks x cache_kb x slices [x utility x
    market].  ``benchmarks`` accepts names or raw profiles; utilities
    and markets are duck-typed (any object carrying the paper's fields).
    """

    benchmarks: Tuple[Any, ...]
    cache_grid: Tuple[float, ...] = CACHE_GRID_KB
    slice_grid: Tuple[int, ...] = SLICE_GRID
    utilities: Tuple[Any, ...] = ()
    markets: Tuple[Any, ...] = ()
    budget: float = 0.0
    #: Evaluate through the cycle-level simulator instead of the
    #: analytic model ("simulation" work units).
    simulate: bool = False
    trace_length: int = 4000
    trace_seed: int = 1
    sim_config: Any = None  # Optional[SimConfig]
    #: Backend for utility units; ``None`` keeps the scalar reference.
    backend: Optional[str] = None
    #: Streaming-service parameters; when set the spec expands into
    #: ``shards`` independent ``kind="service"`` units (benchmarks and
    #: grids are ignored).  Values must be primitives - they become the
    #: unit's frozen, cache-keyed ``service`` tuple.  A ``couple > 1``
    #: entry makes each unit run a whole coupled shard group (N
    #: services sharing a global price vector) in-process; the stream
    #: stats schema is stamped by ``STATS_VERSION`` in
    #: ``repro.experiments.datacenter_stream``, so schema changes
    #: invalidate cached unit results instead of misreading them.
    service: Optional[Dict[str, Any]] = None
    shards: int = 1

    def expand(self, model: Optional[AnalyticModel] = None
               ) -> List[WorkUnit]:
        """The spec's work units, in deterministic axis order."""
        if self.service is not None:
            base = dict(self.service)
            seed0 = int(base.get("seed", 1))
            units = []
            for shard in range(max(1, int(self.shards))):
                params = dict(base)
                # Shards are independent streams: decorrelate by seed.
                params["seed"] = seed0 + shard
                units.append(WorkUnit(
                    kind="service",
                    profile_fields=(("name", f"stream/shard{shard}"),),
                    cache_grid=(),
                    slice_grid=(),
                    calibration=(),
                    service=tuple(sorted(params.items())),
                    shard=shard,
                ))
            return units
        calibration = model_calibration(model or AnalyticModel())
        cache_grid = tuple(float(c) for c in self.cache_grid)
        slice_grid = tuple(int(s) for s in self.slice_grid)
        if self.backend is None:
            unit_backend = "python"
        else:
            from repro.economics.backend import resolve_backend

            unit_backend = resolve_backend(self.backend)
        units: List[WorkUnit] = []
        for bench in self.benchmarks:
            fields = profile_key(bench)
            if self.simulate:
                # Analytic calibration cannot affect a simulation; keep
                # it out of the key so model tweaks don't cold the cache.
                units.append(WorkUnit(
                    kind="simulation",
                    profile_fields=fields,
                    cache_grid=cache_grid,
                    slice_grid=slice_grid,
                    calibration=(),
                    trace_length=int(self.trace_length),
                    trace_seed=int(self.trace_seed),
                    sim_config=self.sim_config,
                ))
                continue
            if not self.utilities and not self.markets:
                units.append(WorkUnit(
                    kind="performance",
                    profile_fields=fields,
                    cache_grid=cache_grid,
                    slice_grid=slice_grid,
                    calibration=calibration,
                ))
                continue
            for utility in self.utilities:
                for market in self.markets:
                    units.append(WorkUnit(
                        kind="utility",
                        profile_fields=fields,
                        cache_grid=cache_grid,
                        slice_grid=slice_grid,
                        calibration=calibration,
                        utility=_norm_utility(utility),
                        market=_norm_market(market),
                        budget=float(self.budget),
                        backend=unit_backend,
                    ))
        return units


def model_calibration(model: AnalyticModel
                      ) -> Tuple[Tuple[str, float], ...]:
    """Calibration fingerprint: module constants + instance parameters."""
    constants = dict(calibration_constants())
    constants["comm_tolerance"] = float(model.comm_tolerance)
    constants["mlp_per_slice"] = float(model.mlp_per_slice)
    return tuple(sorted(constants.items()))


def evaluate_unit(unit: WorkUnit) -> List[List[float]]:
    """Evaluate one work unit; runs in worker processes and in-process.

    Returns JSON-stable rows ``[[cache_kb, slices, value], ...]`` in
    (cache outer, slice inner) grid order.
    """
    if unit.kind == "service":
        # Lazy: the engine has no load-time dependency on the cloud
        # service (experiments sit above the engine in the layering).
        from repro.experiments.datacenter_stream import evaluate_shard

        return evaluate_shard(dict(unit.service or ()))

    fields = dict(unit.profile_fields)
    profile = BenchmarkProfile(**fields)

    def _model() -> AnalyticModel:
        # Simulation units carry an empty calibration on purpose (the
        # analytic model cannot affect them); only analytic kinds may
        # build the model from it.
        calibration = dict(unit.calibration)
        return AnalyticModel(
            comm_tolerance=calibration["comm_tolerance"],
            mlp_per_slice=calibration["mlp_per_slice"],
        )

    if unit.kind == "performance":
        model = _model()
        return [
            [c, s, model.performance(profile, c, s)]
            for c in unit.cache_grid
            for s in unit.slice_grid
        ]
    if unit.kind == "simulation":
        # Lazy imports: analytic sweeps must not pay for the simulator.
        from repro.core.simulator import simulate
        from repro.sampling import SamplingConfig, simulate_sampled
        from repro.trace.materialize import get_workload

        sampling = (SamplingConfig(**dict(unit.sampling))
                    if unit.sampling is not None else None)
        sim_config = unit.sim_config
        if sim_config is not None and sim_config.backend == "batched":
            # Whole-grid batched evaluation: every (cache, slices) point
            # of this unit becomes one lane over ONE shared trace-column
            # materialization, advanced in lockstep by the SoA backend.
            # Bit-identical to the scalar loop below (the equivalence
            # harness pins this), just one simulator instead of |grid|.
            from repro.core.batched import BatchedSimulator

            warmup, trace = get_workload(
                profile, unit.trace_length, unit.trace_seed)
            lanes = [(int(s), float(c))
                     for c in unit.cache_grid for s in unit.slice_grid]
            sim = BatchedSimulator(
                trace, lanes, config=sim_config,
                warmup_addresses=[warmup])
            if sampling is not None:
                lane_results = sim.run_sampled(sampling)
            else:
                lane_results = sim.run()
            return [
                [float(c), int(s), result.ipc]
                for (s, c), result in zip(lanes, lane_results)
            ]
        rows = []
        for c in unit.cache_grid:
            for s in unit.slice_grid:
                # Served from the process-local workload LRU, so every
                # grid point of this unit (and later units for the same
                # profile in this worker) reuses one generated trace.
                warmup, trace = get_workload(
                    profile, unit.trace_length, unit.trace_seed)
                if sampling is not None:
                    result = simulate_sampled(
                        trace, num_slices=int(s), l2_cache_kb=float(c),
                        sampling=sampling, config=unit.sim_config,
                        warmup_addresses=warmup)
                else:
                    result = simulate(
                        trace, num_slices=int(s), l2_cache_kb=float(c),
                        config=unit.sim_config, warmup_addresses=warmup)
                rows.append([c, s, result.ipc])
        return rows
    if unit.kind == "utility":
        # Import lazily so the engine has no load-time economics
        # dependency (economics imports the engine).
        from repro.economics.market import Market
        from repro.economics.utility import UtilityFunction

        uname, exponent = unit.utility
        mname, slice_price, bank_price, fixed_cost = unit.market
        utility = UtilityFunction(name=uname, perf_exponent=exponent)
        market = Market(name=mname, slice_price=slice_price,
                        bank_price=bank_price, fixed_cost=fixed_cost)
        model = _model()
        if unit.backend == "numpy":
            from repro.economics.tensor import (
                performance_tensor,
                utility_matrix,
                vcores_matrix,
            )

            perf = performance_tensor([profile], unit.cache_grid,
                                      unit.slice_grid, model=model)[0]
            vcores = vcores_matrix(market, unit.budget, unit.cache_grid,
                                   unit.slice_grid)
            util = utility_matrix(perf, vcores, utility)
            return [
                [c, s, float(util[ci, si])]
                for ci, c in enumerate(unit.cache_grid)
                for si, s in enumerate(unit.slice_grid)
            ]
        rows = []
        for c in unit.cache_grid:
            for s in unit.slice_grid:
                perf = model.performance(profile, c, s)
                vcores = market.vcores_affordable(unit.budget, c, s)
                rows.append([c, s, utility.value(perf, vcores)])
        return rows
    raise ValueError(f"unknown work-unit kind {unit.kind!r}")


def _evaluate_unit_tracked(payload: Tuple[WorkUnit, float]) -> Dict[str, Any]:
    """Worker-side wrapper around :func:`evaluate_unit`.

    Runs in pool workers (and in-process for serial sweeps).  Measures
    queue wait (submit-to-start on the shared ``CLOCK_MONOTONIC``, so
    worker timestamps line up with the parent's) and evaluation time,
    and converts any exception into a structured failure record - the
    parent re-raises it as a clear :class:`WorkUnitError` instead of
    surfacing a pickled remote traceback.
    """
    unit, submitted = payload
    started = time.monotonic()
    pid = os.getpid()
    base = {
        "pid": pid,
        "queue_wait_s": max(0.0, started - submitted),
    }
    try:
        rows = evaluate_unit(unit)
    except Exception as exc:
        base.update({
            "ok": False,
            "eval_s": time.monotonic() - started,
            "error_type": type(exc).__name__,
            "error_msg": str(exc),
            "traceback": _traceback.format_exc(),
        })
        return base
    base.update({"ok": True, "rows": rows,
                 "eval_s": time.monotonic() - started})
    return base


def _affinity_key(unit: "WorkUnit") -> Tuple[Any, ...]:
    """Which workload a unit touches; units sharing it share a batch.

    Simulation units are keyed by their generated workload (profile,
    length, seed) - NOT by grid/sampling/config - so every unit that
    would regenerate the same trace lands on one worker and reuses its
    process-local LRU entry.  Analytic kinds key by profile; service
    shards are independent streams and never batch together.
    """
    if unit.kind == "simulation":
        return ("workload", unit.profile_fields, unit.trace_length,
                unit.trace_seed)
    if unit.kind == "service":
        return ("service", unit.shard, unit.service)
    return ("profile", unit.profile_fields)


def _install_worker_store(store_root: Optional[str]) -> None:
    """Point this process's ``get_workload`` at the sweep's store tier."""
    from repro.trace import materialize as _materialize

    if store_root is None:
        _materialize.set_store(None)
        return
    from repro.engine.store import get_store

    _materialize.set_store(get_store(store_root))


def _workload_counters() -> Dict[str, float]:
    """Snapshot of this process's workload-acquisition counters."""
    from repro.engine.store import store_counters
    from repro.trace.materialize import cache_stats

    lru = cache_stats()
    st = store_counters()
    return {
        "lru_hits": lru["hits"],
        "lru_misses": lru["misses"],
        "generations": lru["generations"],
        "generation_s": lru["generation_s"],
        "store_hits": st["hits"],
        "store_misses": st["misses"],
        "store_dumps": st["dumps"],
        "store_corrupt": st["corrupt"],
        "store_mmap_opens": st["mmap_opens"],
        "store_bytes_mapped": st["bytes_mapped"],
        "store_wait_s": st["wait_s"],
        "store_load_s": st["load_s"],
        "store_dump_s": st["dump_s"],
    }


def _evaluate_batch_tracked(
        payload: Tuple[Tuple["WorkUnit", ...], float, Optional[str]]
) -> List[Dict[str, Any]]:
    """Worker-side evaluation of one affinity batch.

    Evaluates every unit of the batch in order (a failing unit is
    recorded and does not abort its siblings), measuring per-unit queue
    wait (submit-to-start on the shared ``CLOCK_MONOTONIC``) and eval
    time exactly like :func:`_evaluate_unit_tracked`, plus the deltas
    of the workload LRU/store/generator counters so the parent can
    attribute where each unit's trace came from.
    """
    units, submitted, store_root = payload
    _install_worker_store(store_root)
    pid = os.getpid()
    outcomes: List[Dict[str, Any]] = []
    for unit in units:
        started = time.monotonic()
        base: Dict[str, Any] = {
            "pid": pid,
            "queue_wait_s": max(0.0, started - submitted),
        }
        before = _workload_counters()
        try:
            rows = evaluate_unit(unit)
        except Exception as exc:
            base.update({
                "ok": False,
                "eval_s": time.monotonic() - started,
                "error_type": type(exc).__name__,
                "error_msg": str(exc),
                "traceback": _traceback.format_exc(),
            })
        else:
            base.update({"ok": True, "rows": rows,
                         "eval_s": time.monotonic() - started})
        after = _workload_counters()
        base["workload"] = {k: after[k] - before[k] for k in after}
        outcomes.append(base)
    return outcomes


@dataclass(frozen=True)
class SweepResult:
    """All evaluated grids of one sweep, plus its accounting."""

    values: Dict[KindKey, Dict[Tuple[float, int], float]]
    units: int
    points: int
    cache_hits: int
    cache_misses: int
    elapsed_s: float
    workers: int
    parallel: bool
    #: Per-unit evaluation telemetry (cache hits included, eval_s == 0).
    unit_stats: Tuple[UnitStat, ...] = ()
    #: Workload-acquisition totals across all evaluated units
    #: (lru_hits/misses, generations, store hits/misses/dumps, bytes
    #: mapped, ...); empty for fully-cached sweeps.
    store_stats: Dict[str, float] = field(default_factory=dict)
    #: Scheduler accounting: affinity batches formed, straggler
    #: re-dispatches (steals), claims won/lost against concurrent
    #: sweeps, units served from a peer's evaluation.
    sched_stats: Dict[str, float] = field(default_factory=dict)

    def grid(self, benchmark: ProfileLike, utility: Any = None,
             market: Any = None) -> Dict[Tuple[float, int], float]:
        """One benchmark's ``{(cache_kb, slices): value}`` grid."""
        name = benchmark.name if isinstance(benchmark, BenchmarkProfile) \
            else str(benchmark)
        if utility is None and market is None:
            return self.values[(name,)]
        uname = utility if isinstance(utility, str) else utility.name
        mname = market if isinstance(market, str) else market.name
        return self.values[(name, uname, mname)]


class SweepEngine:
    """Expands sweep specs, schedules work units, caches results."""

    def __init__(self, jobs: Optional[int] = None,
                 cache: Optional[ResultCache] = None,
                 parallel_threshold: int = DEFAULT_PARALLEL_THRESHOLD,
                 metrics: Optional[EngineMetrics] = None,
                 obs: Optional[Observability] = None,
                 timeout_s: Optional[float] = None,
                 sampling: Any = None,
                 backend: Optional[str] = None,
                 pool_retries: int = DEFAULT_POOL_RETRIES,
                 store: Any = None,
                 straggler_factor: float = DEFAULT_STRAGGLER_FACTOR,
                 straggler_min_s: float = DEFAULT_STRAGGLER_MIN_S,
                 dedupe: bool = True):
        if jobs is not None and jobs < 1:
            raise ValueError("jobs must be >= 1")
        if pool_retries < 0:
            raise ValueError("pool_retries cannot be negative")
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)
        self.cache = cache if cache is not None else ResultCache()
        self.parallel_threshold = parallel_threshold
        self.metrics = metrics if metrics is not None else EngineMetrics()
        self.obs = obs if obs is not None else OBS_OFF
        self.timeout_s = timeout_s
        #: Optional :class:`~repro.sampling.SamplingConfig` applied to
        #: every simulation work unit this engine schedules.  ``None``
        #: keeps simulation units exact (the default for golden paths).
        self.sampling = sampling
        #: Backend applied to utility sweeps whose spec doesn't choose
        #: one itself; stamped into every unit's cache key.
        self.backend = backend
        #: Transient worker deaths tolerated per sweep before the
        #: remaining units are surfaced as a :class:`WorkUnitError`.
        self.pool_retries = pool_retries
        #: Shared mmap workload store (:mod:`repro.engine.store`):
        #: ``None`` is off, ``True`` places it under the result cache's
        #: root, a path or :class:`WorkloadStore` uses that store.
        #: Results are bit-identical on or off.
        self.store = self._resolve_store(store)
        self.straggler_factor = float(straggler_factor)
        self.straggler_min_s = float(straggler_min_s)
        #: Claim pending units in the shared cache so concurrent sweeps
        #: on one box each evaluate a unique unit exactly once.
        self.dedupe = dedupe
        #: Kind -> EMA of observed seconds-per-point, fed by completed
        #: outcomes and consulted when ordering batches (heaviest
        #: first) - the UnitStat telemetry driving the schedule.
        self._cost_ema: Dict[str, float] = {}
        # Cumulative scheduler/dedupe accounting, exported as gauges.
        self._steals = 0
        self._affinity_hits = 0
        self._claims_won = 0
        self._claims_lost = 0
        self._deferred_served = 0
        # Pre-bound instruments: null objects when obs is off, so the
        # hot scheduling loop never branches on enablement.
        scope = self.obs.scope("engine")
        self._c_sweeps = scope.counter("sweeps")
        self._c_units = scope.counter("units")
        self._c_points = scope.counter("points")
        self._c_cache_hits = scope.counter("cache.hits")
        self._c_cache_misses = scope.counter("cache.misses")
        self._h_eval = scope.histogram("unit_eval_s")
        self._h_queue = scope.histogram("unit_queue_wait_s")
        self._t_sweep = scope.timer("sweep_s")
        scope.gauge("sched.steals", lambda: self._steals)
        scope.gauge("sched.affinity_hits", lambda: self._affinity_hits)
        scope.gauge("sched.claims_won", lambda: self._claims_won)
        scope.gauge("sched.claims_lost", lambda: self._claims_lost)
        scope.gauge("sched.deferred_served",
                    lambda: self._deferred_served)
        scope.gauge("cache.corrupt", lambda: self.cache.corrupt)
        if self.store is not None:
            from repro.engine.store import attach_obs as _store_obs

            _store_obs(self.obs.scope("engine.store"))

    def _resolve_store(self, store: Any):
        """``None``/``False`` -> off; ``True`` -> under the cache root;
        a path -> that root; a :class:`WorkloadStore` -> itself."""
        if store is None or store is False:
            return None
        from repro.engine.store import (
            DEFAULT_STORE_DIRNAME,
            WorkloadStore,
            get_store,
        )

        if isinstance(store, WorkloadStore):
            return store
        if store is True:
            return get_store(Path(self.cache.root)
                             / DEFAULT_STORE_DIRNAME)
        return get_store(store)

    # ------------------------------------------------------------------
    # core scheduling
    # ------------------------------------------------------------------

    def run(self, spec: SweepSpec,
            model: Optional[AnalyticModel] = None) -> SweepResult:
        """Evaluate a spec: expand, consult the cache, fan out the rest.

        Raises :class:`WorkUnitError` when a unit fails (its result never
        reaches the cache; other completed units are still cached), and
        :class:`SweepTimeoutError` when ``timeout_s`` expires with units
        outstanding (stuck workers are terminated, queued units
        cancelled).
        """
        start = time.perf_counter()
        sweep_start_us = now_us()
        if self.backend is not None and spec.backend is None:
            spec = replace(spec, backend=self.backend)
        units = spec.expand(model)
        if self.sampling is not None:
            sampling_key = tuple(sorted(self.sampling.key_fields().items()))
            units = [
                replace(unit, sampling=sampling_key)
                if unit.kind == "simulation" and unit.sampling is None
                else unit
                for unit in units
            ]
        results: Dict[WorkUnit, List[List[float]]] = {}
        pending: List[WorkUnit] = []
        stats: List[UnitStat] = []
        hits = 0
        # One tail-read makes every entry published since the last
        # sweep (by this or any concurrent process) visible; each unit
        # below then resolves with a single in-memory lookup.
        self.cache.refresh_index()
        for unit in units:
            cached = self.cache.get(unit.cache_key())
            if cached is not None:
                results[unit] = cached
                stats.append(UnitStat(
                    benchmark=unit.benchmark, kind=unit.kind,
                    points=unit.points, cached=True,
                ))
                hits += 1
            else:
                pending.append(unit)

        # Claim pending units so concurrent sweeps on one box split the
        # work: units whose claim is held elsewhere are deferred - we
        # wait for the claimant's published entry instead of redoing it.
        held: Set[str] = set()
        deferred: List[WorkUnit] = []
        evaluable: List[WorkUnit] = []
        if pending and self.dedupe and self.cache.enabled:
            for unit in pending:
                key = unit.cache_key()
                if self.cache.claims.acquire(key):
                    held.add(key)
                    evaluable.append(unit)
                    self._claims_won += 1
                else:
                    deferred.append(unit)
                    self._claims_lost += 1
        else:
            evaluable = list(pending)

        store_root = (str(self.store.root)
                      if self.store is not None else None)
        pending_points = sum(u.points for u in evaluable)
        workers = min(self.jobs, len(evaluable)) if evaluable else 0
        parallel = (workers > 1
                    and pending_points >= self.parallel_threshold)
        outcomes_by_unit: Dict[WorkUnit, Dict[str, Any]] = {}
        sched: Dict[str, float] = {
            "batches": 0, "steals": 0, "redispatched_units": 0,
            "claims_won": len(held), "claims_lost": len(deferred),
            "deferred_served": 0, "pool_retries": 0,
        }
        from repro.trace import materialize as _materialize

        previous_store = _materialize.get_default_store()
        try:
            if parallel:
                outcomes_by_unit = self._run_parallel(
                    evaluable, workers, store_root, held, sched)
            else:
                workers = 1 if evaluable else 0
                for unit in evaluable:
                    (outcome,) = _evaluate_batch_tracked(
                        ((unit,), time.monotonic(), store_root))
                    outcomes_by_unit[unit] = outcome
                    self._note_cost(unit, outcome)
                    self._finish_outcome(unit, outcome, held)
            for unit in deferred:
                value = self._await_deferred(unit)
                if value is not None:
                    results[unit] = value
                    stats.append(UnitStat(
                        benchmark=unit.benchmark, kind=unit.kind,
                        points=unit.points, cached=True,
                    ))
                    self._deferred_served += 1
                    sched["deferred_served"] += 1
                else:
                    # The claimant vanished without publishing (crash,
                    # failed unit): evaluate locally after all.
                    (outcome,) = _evaluate_batch_tracked(
                        ((unit,), time.monotonic(), store_root))
                    outcomes_by_unit[unit] = outcome
                    self._finish_outcome(unit, outcome, held)
        finally:
            # The in-process batch wrapper installs the sweep's store as
            # the process default; put the caller's back.
            _materialize.set_store(previous_store)
            for key in list(held):
                self.cache.claims.release(key)
            held.clear()

        failure: Optional[Tuple[WorkUnit, Dict[str, Any]]] = None
        workload_totals: Dict[str, float] = {}
        for unit in pending:
            outcome = outcomes_by_unit.get(unit)
            if outcome is None:
                # Deferred-and-served elsewhere, or lost to a pool that
                # exhausted its retries before reaching this unit.
                continue
            stat = UnitStat(
                benchmark=unit.benchmark, kind=unit.kind,
                points=unit.points, cached=False,
                worker_pid=outcome["pid"],
                queue_wait_s=outcome["queue_wait_s"],
                eval_s=outcome["eval_s"],
            )
            stats.append(stat)
            self._h_eval.observe(stat.eval_s)
            self._h_queue.observe(stat.queue_wait_s)
            self._trace_unit(unit, outcome)
            for name, delta in (outcome.get("workload") or {}).items():
                workload_totals[name] = (
                    workload_totals.get(name, 0) + delta)
            if outcome["ok"]:
                # Already cached eagerly by _finish_outcome the moment
                # it completed; a failed unit never reaches the cache.
                results[unit] = outcome["rows"]
            elif failure is None:
                failure = (unit, outcome)
        self._affinity_hits += int(workload_totals.get("lru_hits", 0))
        self.metrics.record_units(stats)
        if failure is not None:
            unit, outcome = failure
            raise WorkUnitError(
                f"work unit {unit.benchmark!r} ({unit.kind}) failed in "
                f"worker {outcome['pid']}: {outcome['error_type']}: "
                f"{outcome['error_msg']}",
                unit=unit,
                worker_pid=outcome["pid"],
                worker_traceback=outcome["traceback"],
            )

        values: Dict[KindKey, Dict[Tuple[float, int], float]] = {}
        for unit in units:
            values[unit.result_key()] = {
                (float(c), int(s)): v for c, s, v in results[unit]
            }
        elapsed = time.perf_counter() - start
        sweep = SweepResult(
            values=values,
            units=len(units),
            points=sum(u.points for u in units),
            cache_hits=hits,
            cache_misses=len(pending),
            elapsed_s=elapsed,
            workers=workers,
            parallel=parallel,
            unit_stats=tuple(stats),
            store_stats=workload_totals,
            sched_stats=dict(sched),
        )
        self.metrics.record(SweepRecord(
            kind=units[0].kind if units else "empty",
            units=sweep.units,
            points=sweep.points,
            cache_hits=hits,
            cache_misses=len(pending),
            evaluated_points=pending_points,
            elapsed_s=elapsed,
            workers=workers,
            parallel=parallel,
        ))
        self._c_sweeps.inc()
        self._c_units.inc(len(units))
        self._c_points.inc(sweep.points)
        self._c_cache_hits.inc(hits)
        self._c_cache_misses.inc(len(pending))
        self._t_sweep.add(elapsed)
        if self.obs.tracing:
            self.obs.tracer.complete(
                f"sweep.{sweep.units and units[0].kind or 'empty'}",
                ts=sweep_start_us, dur=elapsed * 1e6, cat="engine",
                args={"units": sweep.units, "points": sweep.points,
                      "cache_hits": hits, "workers": workers,
                      "parallel": parallel},
            )
        return sweep

    def _run_parallel(self, pending: List["WorkUnit"], workers: int,
                      store_root: Optional[str], held: Set[str],
                      sched: Dict[str, float]
                      ) -> Dict["WorkUnit", Dict[str, Any]]:
        """Fan pending units across a process pool, tracked and bounded.

        Units are grouped into workload-affinity batches
        (:meth:`_make_batches`) so every unit sharing a generated trace
        lands in one worker's LRU, submitted heaviest-first as
        independent futures, and harvested as they complete - a
        completed unit is cached *immediately*, so a later crash or
        timeout never loses finished work.  A batch whose wall time
        blows past the straggler threshold is speculatively
        re-dispatched to an idle worker; first completion wins (results
        are bit-identical, so speculation is always safe).

        On timeout the pool is abandoned without waiting (queued futures
        cancelled, worker processes terminated) so a hung unit cannot
        wedge the sweep's caller.

        A dying worker (``BrokenProcessPool``) is treated as transient:
        completed batches are kept, and the un-run remainder is retried
        on a fresh pool up to ``pool_retries`` times with capped
        exponential backoff.  If the deaths persist, the first un-run
        unit is surfaced as a failed outcome.
        """
        outcomes_by_unit: Dict["WorkUnit", Dict[str, Any]] = {}
        batches = self._make_batches(pending, workers)
        sched["batches"] = len(batches)
        pending_idx: Set[int] = set(range(len(batches)))
        deadline = (time.monotonic() + self.timeout_s
                    if self.timeout_s is not None else None)
        attempt = 0
        while pending_idx:
            pool = ProcessPoolExecutor(max_workers=workers)
            futures: Dict[Any, int] = {}
            duplicated: Set[int] = set()
            submit_ts: Dict[int, float] = {}
            batch_walls: List[float] = []
            crashed = False
            try:
                # Indices ascend in heaviest-first batch order (LPT).
                for idx in sorted(pending_idx):
                    ts = time.monotonic()
                    submit_ts[idx] = ts
                    fut = pool.submit(
                        _evaluate_batch_tracked,
                        (tuple(batches[idx]), ts, store_root))
                    futures[fut] = idx
                while pending_idx and futures:
                    done, _ = futures_wait(
                        list(futures), timeout=POOL_POLL_S,
                        return_when=FIRST_COMPLETED)
                    now = time.monotonic()
                    if (deadline is not None and now > deadline
                            and pending_idx):
                        stuck = tuple(u for i in sorted(pending_idx)
                                      for u in batches[i])
                        self._abandon_pool(pool)
                        names = ", ".join(
                            u.benchmark for u in stuck[:5]
                        ) + ("..." if len(stuck) > 5 else "")
                        raise SweepTimeoutError(
                            f"sweep timed out after {self.timeout_s:g}s "
                            f"with {len(stuck)} of {len(pending)} units "
                            f"outstanding ({names})",
                            pending_units=stuck,
                        ) from None
                    for fut in done:
                        idx = futures.pop(fut)
                        if fut.cancelled():
                            continue
                        try:
                            batch_outcomes = fut.result()
                        except BrokenProcessPool:
                            crashed = True
                            continue
                        if idx not in pending_idx:
                            # A straggler duplicate lost the race; the
                            # winner's (bit-identical) result stands.
                            continue
                        self._collect_batch(batches[idx], batch_outcomes,
                                            outcomes_by_unit, held)
                        pending_idx.discard(idx)
                        batch_walls.append(now - submit_ts[idx])
                    if crashed:
                        break
                    if (pending_idx and batch_walls
                            and len(futures) < workers):
                        self._redispatch_stragglers(
                            pool, batches, pending_idx, duplicated,
                            submit_ts, batch_walls, futures, workers,
                            store_root, sched)
            except BaseException:
                self._abandon_pool(pool)
                raise
            if not crashed:
                if futures:
                    # Only losing straggler duplicates remain; their
                    # results are already in.  Don't wait on them.
                    self._abandon_pool(pool)
                else:
                    pool.shutdown(wait=True)
                continue
            # A worker died.  Harvest whatever completed around the
            # crash (those results are good), then retry the un-run
            # remainder on a fresh pool; give up after ``pool_retries``.
            for fut, idx in list(futures.items()):
                if not fut.done() or fut.cancelled():
                    continue
                try:
                    batch_outcomes = fut.result()
                except BaseException:
                    continue
                if idx in pending_idx:
                    self._collect_batch(batches[idx], batch_outcomes,
                                        outcomes_by_unit, held)
                    pending_idx.discard(idx)
            self._abandon_pool(pool)
            if not pending_idx:
                break
            if attempt >= self.pool_retries:
                first = batches[min(pending_idx)][0]
                outcomes_by_unit[first] = {
                    "pid": 0,
                    "queue_wait_s": 0.0,
                    "eval_s": 0.0,
                    "ok": False,
                    "error_type": "BrokenProcessPool",
                    "error_msg": (
                        f"worker process died evaluating "
                        f"{first.benchmark!r} and kept dying across "
                        f"{attempt + 1} pool attempts"),
                    "traceback": "",
                }
                break
            attempt += 1
            sched["pool_retries"] += 1
            delay = min(POOL_RETRY_BACKOFF_CAP_S,
                        POOL_RETRY_BACKOFF_S * (2 ** (attempt - 1)))
            time.sleep(delay)
        return outcomes_by_unit

    def _make_batches(self, pending: Sequence["WorkUnit"],
                      workers: int) -> List[List["WorkUnit"]]:
        """Group units into affinity batches, split for parallelism,
        ordered heaviest-first.

        Units sharing an :func:`_affinity_key` (same generated
        workload) start in one batch so a single worker pays the
        trace's acquisition once and its siblings ride the process LRU.
        The largest batches are then halved until there are at least
        ``min(workers, len(pending))`` of them - affinity never idles a
        worker; with the mmap store a split batch's second half reloads
        the workload in milliseconds.  Finally batches are ordered by
        estimated cost (live per-kind EMA of observed seconds-per-point,
        seeded by ``_COST_PRIOR``), heaviest first, so the longest work
        starts earliest (LPT scheduling).
        """
        groups: "OrderedDict[Tuple[Any, ...], List[WorkUnit]]" = \
            OrderedDict()
        for unit in pending:
            groups.setdefault(_affinity_key(unit), []).append(unit)
        batches = list(groups.values())
        target = min(workers, len(pending))
        while len(batches) < target:
            largest = max(batches, key=len)
            if len(largest) < 2:
                break
            batches.remove(largest)
            half = len(largest) // 2
            batches.append(largest[:half])
            batches.append(largest[half:])
        batches.sort(key=self._batch_cost, reverse=True)
        return batches

    def _batch_cost(self, batch: Sequence["WorkUnit"]) -> float:
        return sum(
            unit.points * self._cost_ema.get(
                unit.kind, _COST_PRIOR.get(unit.kind, 1e-3))
            for unit in batch
        )

    def _collect_batch(self, units: Sequence["WorkUnit"],
                       batch_outcomes: Sequence[Dict[str, Any]],
                       outcomes_by_unit: Dict["WorkUnit", Dict[str, Any]],
                       held: Set[str]) -> None:
        for unit, outcome in zip(units, batch_outcomes):
            outcomes_by_unit[unit] = outcome
            self._note_cost(unit, outcome)
            self._finish_outcome(unit, outcome, held)

    def _finish_outcome(self, unit: "WorkUnit",
                        outcome: Dict[str, Any],
                        held: Set[str]) -> None:
        """Publish one completed unit the moment it lands: cache the
        result (success only - a failed unit must never poison the
        cache) and release its claim so deferred peers unblock."""
        key = unit.cache_key()
        if outcome["ok"]:
            self.cache.put(key, outcome["rows"],
                           key_fields=unit.key_fields())
        if key in held:
            self.cache.claims.release(key)
            held.discard(key)

    def _note_cost(self, unit: "WorkUnit",
                   outcome: Dict[str, Any]) -> None:
        """Feed the per-kind cost EMA from one successful outcome."""
        if not outcome.get("ok"):
            return
        rate = outcome["eval_s"] / max(1, unit.points)
        prev = self._cost_ema.get(unit.kind)
        self._cost_ema[unit.kind] = (
            rate if prev is None else 0.7 * prev + 0.3 * rate)

    def _redispatch_stragglers(self, pool: ProcessPoolExecutor,
                               batches: Sequence[Sequence["WorkUnit"]],
                               pending_idx: Set[int],
                               duplicated: Set[int],
                               submit_ts: Dict[int, float],
                               batch_walls: Sequence[float],
                               futures: Dict[Any, int], workers: int,
                               store_root: Optional[str],
                               sched: Dict[str, float]) -> None:
        """Duplicate batches that blew past the straggler threshold onto
        idle workers.  Driven by the same telemetry the UnitStats
        record: completed-batch walls set the bar, and a batch is only
        stolen while spare worker slots exist."""
        walls = sorted(batch_walls)
        median = walls[len(walls) // 2]
        threshold = max(self.straggler_min_s,
                        self.straggler_factor * median)
        now = time.monotonic()
        for idx in sorted(pending_idx):
            if len(futures) >= workers:
                break
            if idx in duplicated:
                continue
            if now - submit_ts[idx] <= threshold:
                continue
            try:
                fut = pool.submit(
                    _evaluate_batch_tracked,
                    (tuple(batches[idx]), now, store_root))
            except RuntimeError:
                # Pool already broken or shutting down; the main loop
                # deals with it.
                return
            futures[fut] = idx
            duplicated.add(idx)
            self._steals += 1
            sched["steals"] += 1
            sched["redispatched_units"] += len(batches[idx])

    def _await_deferred(self, unit: "WorkUnit"
                        ) -> Optional[List[List[float]]]:
        """Wait for a concurrent sweep's claimed unit to publish.

        Polls the shared index (cheap tail-reads) while the peer's
        claim stays live; returns the published rows, or ``None`` when
        the claimant vanished without publishing (the caller then
        evaluates locally).
        """
        key = unit.cache_key()
        cap = (self.timeout_s if self.timeout_s is not None
               else DEDUPE_WAIT_CAP_S)
        deadline = time.monotonic() + cap
        while True:
            self.cache.refresh_index()
            if self.cache.contains(key):
                value = self.cache.get(key)
                if value is not None:
                    return value
            if not self.cache.claims.active(key):
                # Claim gone: either the peer published (entry appears
                # on one final refresh) or it died/failed mid-unit.
                self.cache.refresh_index()
                if self.cache.contains(key):
                    return self.cache.get(key)
                return None
            if time.monotonic() > deadline:
                return None
            time.sleep(_DEDUPE_POLL_S)

    @staticmethod
    def _abandon_pool(pool: ProcessPoolExecutor) -> None:
        """Tear a pool down without waiting on its (possibly hung)
        workers."""
        pool.shutdown(wait=False, cancel_futures=True)
        try:
            processes = list((pool._processes or {}).values())
        except Exception:
            processes = []
        for proc in processes:
            try:
                proc.terminate()
            except Exception:
                pass

    def _trace_unit(self, unit: "WorkUnit",
                    outcome: Dict[str, Any]) -> None:
        """Emit one complete-span trace event per evaluated unit, on the
        worker pid's track, positioned by its monotonic start time."""
        if not self.obs.tracing:
            return
        from repro.obs.profiling import _ORIGIN

        start_s = (time.monotonic() - _ORIGIN
                   - outcome["eval_s"])
        self.obs.tracer.complete(
            f"unit.{unit.benchmark}", ts=start_s * 1e6,
            dur=outcome["eval_s"] * 1e6, cat="engine",
            tid=outcome["pid"],
            args={"kind": unit.kind, "points": unit.points,
                  "queue_wait_s": round(outcome["queue_wait_s"], 6),
                  "ok": outcome["ok"]},
        )

    # ------------------------------------------------------------------
    # convenience maps
    # ------------------------------------------------------------------

    def performance_map(self, benchmarks: Sequence[ProfileLike],
                        cache_grid: Sequence[float] = CACHE_GRID_KB,
                        slice_grid: Sequence[int] = SLICE_GRID,
                        model: Optional[AnalyticModel] = None
                        ) -> SweepResult:
        """``P(c, s)`` grids for several benchmarks in one fan-out."""
        return self.run(
            SweepSpec(
                benchmarks=tuple(benchmarks),
                cache_grid=tuple(cache_grid),
                slice_grid=tuple(slice_grid),
            ),
            model=model,
        )

    def utility_map(self, benchmarks: Sequence[ProfileLike],
                    utilities: Sequence[Any], markets: Sequence[Any],
                    budget: float,
                    cache_grid: Sequence[float] = CACHE_GRID_KB,
                    slice_grid: Sequence[int] = SLICE_GRID,
                    model: Optional[AnalyticModel] = None) -> SweepResult:
        """Utility grids for benchmark x utility x market in one fan-out."""
        return self.run(
            SweepSpec(
                benchmarks=tuple(benchmarks),
                cache_grid=tuple(cache_grid),
                slice_grid=tuple(slice_grid),
                utilities=tuple(utilities),
                markets=tuple(markets),
                budget=budget,
            ),
            model=model,
        )

    def simulation_map(self, benchmarks: Sequence[ProfileLike],
                       cache_grid: Sequence[float],
                       slice_grid: Sequence[int],
                       trace_length: int, trace_seed: int = 1,
                       sim_config: Any = None) -> SweepResult:
        """Cycle-level ``IPC(c, s)`` grids for several benchmarks.

        Runs the simulator (sampled when the engine was built with
        ``sampling=...``, exact otherwise) per grid point, cached and
        fanned out exactly like analytic sweeps.
        """
        return self.run(
            SweepSpec(
                benchmarks=tuple(benchmarks),
                cache_grid=tuple(cache_grid),
                slice_grid=tuple(slice_grid),
                simulate=True,
                trace_length=trace_length,
                trace_seed=trace_seed,
                sim_config=sim_config,
            )
        )

    def service_map(self, params: Dict[str, Any],
                    shards: int = 1) -> SweepResult:
        """Fan a sharded event stream across workers.

        Each shard is one ``kind="service"`` unit: an independent
        :class:`~repro.cloud.service.AllocationService` driven by a
        seeded stream (seed + shard index), returning its
        ``STREAM_METRICS`` rows keyed ``("stream/shard<i>",)``.
        Cached like any other unit - params and shard are part of the
        content address.
        """
        return self.run(SweepSpec(
            benchmarks=(),
            service=dict(params),
            shards=shards,
        ))

    def grid_model(self, cache_grid: Sequence[float] = CACHE_GRID_KB,
                   slice_grid: Sequence[int] = SLICE_GRID,
                   model: Optional[AnalyticModel] = None,
                   profiles: Optional[Iterable[ProfileLike]] = None
                   ) -> "GridModel":
        """An AnalyticModel drop-in backed by this engine's sweeps."""
        grid = GridModel(self, cache_grid=cache_grid,
                         slice_grid=slice_grid, base=model)
        if profiles is not None:
            grid.prime(list(profiles))
        return grid


class GridModel(AnalyticModel):
    """An :class:`AnalyticModel` whose ``performance()`` serves from an
    engine-filled (cached, fan-out-evaluated) table.

    Off-grid configurations and non-performance queries (``breakdown``)
    fall back to the plain analytic pipeline, so this is a transparent
    drop-in anywhere a model is accepted.  Priming batches benchmarks
    into one engine sweep; unprimed benchmarks are fetched on first use.
    """

    def __init__(self, engine: SweepEngine,
                 cache_grid: Sequence[float] = CACHE_GRID_KB,
                 slice_grid: Sequence[int] = SLICE_GRID,
                 base: Optional[AnalyticModel] = None):
        base = base or AnalyticModel()
        super().__init__(comm_tolerance=base.comm_tolerance,
                         mlp_per_slice=base.mlp_per_slice)
        self._engine = engine
        self._cache_grid = tuple(float(c) for c in cache_grid)
        self._slice_grid = tuple(int(s) for s in slice_grid)
        self._table: Dict[Tuple[BenchmarkProfile, float, int], float] = {}
        self._primed: set = set()

    def prime(self, profiles: Sequence[ProfileLike]) -> None:
        """Fill the table for ``profiles`` in one engine sweep."""
        from repro.perfmodel.model import _resolve

        fresh = []
        for profile in profiles:
            prof = _resolve(profile)
            if prof not in self._primed:
                fresh.append(prof)
        if not fresh:
            return
        sweep = self._engine.performance_map(
            fresh, self._cache_grid, self._slice_grid, model=self
        )
        for prof in fresh:
            for (c, s), value in sweep.grid(prof).items():
                self._table[(prof, c, s)] = value
            self._primed.add(prof)

    def performance(self, profile: ProfileLike, cache_kb: float,
                    slices: int) -> float:
        from repro.perfmodel.model import _resolve

        prof = _resolve(profile)
        key = (prof, float(cache_kb), int(slices))
        value = self._table.get(key)
        if value is not None:
            return value
        if prof not in self._primed:
            self.prime([prof])
            value = self._table.get(key)
            if value is not None:
                return value
        # Off-grid point: compute through the plain analytic pipeline.
        return super().performance(prof, cache_kb, slices)
