"""Structured run metrics for the sweep engine.

Two layers:

* :class:`EngineMetrics` - accumulated by the engine itself, one record
  per sweep: work units, grid points, cache hits/misses, evaluation wall
  time, and how many workers the sweep fanned across.
* :class:`RunMetrics` - used by the experiment runner to attribute
  engine activity and wall time to individual experiments (it snapshots
  the engine counters around each ``run()`` call), and to export the
  whole run as JSON.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs.registry import summarize

_TOTAL_FIELDS = ("sweeps", "units", "points", "cache_hits", "cache_misses",
                 "evaluated_units", "evaluated_points", "parallel_sweeps",
                 "eval_elapsed_s")


@dataclass(frozen=True)
class UnitStat:
    """Telemetry for one evaluated work unit.

    Cache hits appear with ``cached=True`` and zero timings; evaluated
    units carry the pid of the worker that ran them plus how long the
    unit waited in the pool queue and how long evaluation took.
    """

    benchmark: str
    kind: str
    points: int
    cached: bool
    worker_pid: int = 0
    queue_wait_s: float = 0.0
    eval_s: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "benchmark": self.benchmark,
            "kind": self.kind,
            "points": self.points,
            "cached": self.cached,
            "worker_pid": self.worker_pid,
            "queue_wait_s": self.queue_wait_s,
            "eval_s": self.eval_s,
        }


@dataclass
class SweepRecord:
    """One engine sweep's accounting."""

    kind: str
    units: int
    points: int
    cache_hits: int
    cache_misses: int
    evaluated_points: int
    elapsed_s: float
    workers: int
    parallel: bool

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "units": self.units,
            "points": self.points,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "evaluated_points": self.evaluated_points,
            "elapsed_s": self.elapsed_s,
            "workers": self.workers,
            "parallel": self.parallel,
        }


@dataclass
class EngineMetrics:
    """Aggregate counters plus the per-sweep record stream."""

    records: List[SweepRecord] = field(default_factory=list)
    unit_stats: List[UnitStat] = field(default_factory=list)

    def record(self, record: SweepRecord) -> None:
        self.records.append(record)

    def record_units(self, stats) -> None:
        self.unit_stats.extend(stats)

    def unit_distributions(self) -> Dict[str, Any]:
        """Latency/queue-wait distributions over evaluated units, plus a
        per-worker breakdown.  Cache hits count toward ``cached`` only -
        their zero timings would distort the distributions."""
        evaluated = [u for u in self.unit_stats if not u.cached]
        by_worker: Dict[int, List[UnitStat]] = {}
        for stat in evaluated:
            by_worker.setdefault(stat.worker_pid, []).append(stat)
        return {
            "cached_units": sum(1 for u in self.unit_stats if u.cached),
            "evaluated_units": len(evaluated),
            "eval_s": summarize([u.eval_s for u in evaluated]),
            "queue_wait_s": summarize([u.queue_wait_s for u in evaluated]),
            "workers": {
                str(pid): {
                    "units": len(stats),
                    "points": sum(u.points for u in stats),
                    "eval_s_total": sum(u.eval_s for u in stats),
                }
                for pid, stats in sorted(by_worker.items())
            },
        }

    def totals(self) -> Dict[str, float]:
        totals: Dict[str, float] = {name: 0 for name in _TOTAL_FIELDS}
        max_workers = 0
        for rec in self.records:
            totals["sweeps"] += 1
            totals["units"] += rec.units
            totals["points"] += rec.points
            totals["cache_hits"] += rec.cache_hits
            totals["cache_misses"] += rec.cache_misses
            totals["evaluated_units"] += rec.cache_misses
            totals["evaluated_points"] += rec.evaluated_points
            totals["parallel_sweeps"] += 1 if rec.parallel else 0
            totals["eval_elapsed_s"] += rec.elapsed_s
            max_workers = max(max_workers, rec.workers)
        totals["max_workers"] = max_workers
        hits, misses = totals["cache_hits"], totals["cache_misses"]
        looked_up = hits + misses
        totals["cache_hit_rate"] = hits / looked_up if looked_up else 0.0
        elapsed = totals["eval_elapsed_s"]
        totals["points_per_sec"] = (
            totals["points"] / elapsed if elapsed > 0 else 0.0
        )
        return totals

    def to_dict(self) -> Dict[str, Any]:
        return {
            "totals": self.totals(),
            "sweeps": [rec.to_dict() for rec in self.records],
            "unit_distributions": self.unit_distributions(),
        }


def _delta(after: Dict[str, float], before: Dict[str, float]
           ) -> Dict[str, float]:
    return {
        name: after.get(name, 0) - before.get(name, 0)
        for name in _TOTAL_FIELDS
    }


class RunMetrics:
    """Per-experiment wall time + engine activity for one runner pass.

    With ``obs`` attached, every measured experiment also becomes a
    complete-span trace event (category ``runner``) and the exported
    dict carries the observability snapshot alongside the engine
    accounting.
    """

    def __init__(self, engine: Optional[Any] = None,
                 obs: Optional[Any] = None):
        self.engine = engine
        self.obs = obs
        self.experiments: List[Dict[str, Any]] = []
        self._t0 = time.perf_counter()

    @contextmanager
    def measure(self, name: str):
        from repro.obs.profiling import now_us

        before = self.engine.metrics.totals() if self.engine else {}
        start = time.perf_counter()
        start_us = now_us()
        entry: Dict[str, Any] = {"name": name}
        try:
            yield entry
        finally:
            wall = time.perf_counter() - start
            after = self.engine.metrics.totals() if self.engine else {}
            entry["wall_s"] = wall
            entry["engine"] = _delta(after, before)
            entry["engine"]["points_per_sec"] = (
                entry["engine"]["points"] / wall if wall > 0 else 0.0
            )
            self.experiments.append(entry)
            if self.obs is not None and self.obs.tracing:
                self.obs.tracer.complete(
                    f"experiment.{name}", ts=start_us,
                    dur=wall * 1e6, cat="runner",
                    args={"points": entry["engine"]["points"]},
                )

    @property
    def total_wall_s(self) -> float:
        return sum(e["wall_s"] for e in self.experiments)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "total_wall_s": self.total_wall_s,
            "experiments": self.experiments,
        }
        if self.engine is not None:
            out["engine"] = self.engine.metrics.totals()
            out["engine"]["jobs"] = self.engine.jobs
            out["engine"]["cache"] = dict(self.engine.cache.counters())
            out["engine"]["cache_enabled"] = self.engine.cache.enabled
            out["engine"]["cache_dir"] = str(self.engine.cache.root)
            out["engine"]["unit_distributions"] = (
                self.engine.metrics.unit_distributions()
            )
        if self.obs is not None and self.obs.enabled:
            out["obs"] = self.obs.snapshot()
        return out

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, default=str)
