"""Structured run metrics for the sweep engine.

Two layers:

* :class:`EngineMetrics` - accumulated by the engine itself, one record
  per sweep: work units, grid points, cache hits/misses, evaluation wall
  time, and how many workers the sweep fanned across.
* :class:`RunMetrics` - used by the experiment runner to attribute
  engine activity and wall time to individual experiments (it snapshots
  the engine counters around each ``run()`` call), and to export the
  whole run as JSON.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

_TOTAL_FIELDS = ("sweeps", "units", "points", "cache_hits", "cache_misses",
                 "evaluated_units", "evaluated_points", "parallel_sweeps",
                 "eval_elapsed_s")


@dataclass
class SweepRecord:
    """One engine sweep's accounting."""

    kind: str
    units: int
    points: int
    cache_hits: int
    cache_misses: int
    evaluated_points: int
    elapsed_s: float
    workers: int
    parallel: bool

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "units": self.units,
            "points": self.points,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "evaluated_points": self.evaluated_points,
            "elapsed_s": self.elapsed_s,
            "workers": self.workers,
            "parallel": self.parallel,
        }


@dataclass
class EngineMetrics:
    """Aggregate counters plus the per-sweep record stream."""

    records: List[SweepRecord] = field(default_factory=list)

    def record(self, record: SweepRecord) -> None:
        self.records.append(record)

    def totals(self) -> Dict[str, float]:
        totals: Dict[str, float] = {name: 0 for name in _TOTAL_FIELDS}
        max_workers = 0
        for rec in self.records:
            totals["sweeps"] += 1
            totals["units"] += rec.units
            totals["points"] += rec.points
            totals["cache_hits"] += rec.cache_hits
            totals["cache_misses"] += rec.cache_misses
            totals["evaluated_units"] += rec.cache_misses
            totals["evaluated_points"] += rec.evaluated_points
            totals["parallel_sweeps"] += 1 if rec.parallel else 0
            totals["eval_elapsed_s"] += rec.elapsed_s
            max_workers = max(max_workers, rec.workers)
        totals["max_workers"] = max_workers
        hits, misses = totals["cache_hits"], totals["cache_misses"]
        looked_up = hits + misses
        totals["cache_hit_rate"] = hits / looked_up if looked_up else 0.0
        elapsed = totals["eval_elapsed_s"]
        totals["points_per_sec"] = (
            totals["points"] / elapsed if elapsed > 0 else 0.0
        )
        return totals

    def to_dict(self) -> Dict[str, Any]:
        return {
            "totals": self.totals(),
            "sweeps": [rec.to_dict() for rec in self.records],
        }


def _delta(after: Dict[str, float], before: Dict[str, float]
           ) -> Dict[str, float]:
    return {
        name: after.get(name, 0) - before.get(name, 0)
        for name in _TOTAL_FIELDS
    }


class RunMetrics:
    """Per-experiment wall time + engine activity for one runner pass."""

    def __init__(self, engine: Optional[Any] = None):
        self.engine = engine
        self.experiments: List[Dict[str, Any]] = []
        self._t0 = time.perf_counter()

    @contextmanager
    def measure(self, name: str):
        before = self.engine.metrics.totals() if self.engine else {}
        start = time.perf_counter()
        entry: Dict[str, Any] = {"name": name}
        try:
            yield entry
        finally:
            wall = time.perf_counter() - start
            after = self.engine.metrics.totals() if self.engine else {}
            entry["wall_s"] = wall
            entry["engine"] = _delta(after, before)
            entry["engine"]["points_per_sec"] = (
                entry["engine"]["points"] / wall if wall > 0 else 0.0
            )
            self.experiments.append(entry)

    @property
    def total_wall_s(self) -> float:
        return sum(e["wall_s"] for e in self.experiments)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "total_wall_s": self.total_wall_s,
            "experiments": self.experiments,
        }
        if self.engine is not None:
            out["engine"] = self.engine.metrics.totals()
            out["engine"]["jobs"] = self.engine.jobs
            out["engine"]["cache"] = dict(self.engine.cache.counters())
            out["engine"]["cache_enabled"] = self.engine.cache.enabled
            out["engine"]["cache_dir"] = str(self.engine.cache.root)
        return out

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, default=str)
