"""Per-Slice L1 caches.

Paper Table 3: 16 KB, 64-byte lines, 2-way, 3-cycle hit delay for both the
L1 I-cache and L1 D-cache.  The L1 D-cache is private to each Slice; memory
operations are address-interleaved across Slices before access (Section
3.5), so no coherence is needed *within* a VCore.
"""

from __future__ import annotations

from repro.cache.setassoc import AccessResult, SetAssociativeCache

#: Paper Table 3 L1 hit delay (cycles).
L1_HIT_LATENCY = 3

#: Paper Table 3 L1 geometry.
L1_SIZE_BYTES = 16 * 1024
L1_LINE_BYTES = 64
L1_ASSOC = 2


class L1Cache(SetAssociativeCache):
    """A 16 KB 2-way L1 (instruction or data) cache."""

    def __init__(self, name: str = "l1d", size_bytes: int = L1_SIZE_BYTES,
                 line_size: int = L1_LINE_BYTES, assoc: int = L1_ASSOC,
                 hit_latency: int = L1_HIT_LATENCY):
        super().__init__(size_bytes=size_bytes, line_size=line_size,
                         assoc=assoc, name=name)
        if hit_latency < 1:
            raise ValueError("hit latency must be >= 1 cycle")
        self.hit_latency = hit_latency

    def access_timed(self, address: int, is_write: bool = False):
        """Access returning ``(AccessResult, latency_if_hit)``."""
        result = self.access(address, is_write=is_write)
        return result, self.hit_latency

    def attach_obs(self, scope) -> None:
        """Attach counters plus the L1's timing configuration."""
        super().attach_obs(scope)
        scope.info("hit_latency", self.hit_latency)
