"""Directory-based MSI coherence at the L2.

Paper Section 3.5: within a VCore no coherence is needed (loads and stores
are address-interleaved to home Slices), but "in a multi-VCore VM, caches
need to be kept coherent between VCores ... In our presented results, we
put the coherence point between the L1 and L2 caches therefore having a
shared L2 cache per VM.  We modeled this with a detailed model which has a
directory in the L2.  Our modeled cache coherence protocol includes
switched network cost based on distance and L1 invalidations."

The directory tracks, per cache line, which VCores' L1s hold the line and
in what state; writes invalidate remote sharers, charging network latency
per invalidation round-trip.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Set


class CoherenceState(enum.Enum):
    INVALID = "I"
    SHARED = "S"
    MODIFIED = "M"


@dataclass
class _LineEntry:
    state: CoherenceState = CoherenceState.INVALID
    sharers: Set[int] = field(default_factory=set)
    owner: Optional[int] = None


@dataclass
class CoherenceStats:
    reads: int = 0
    writes: int = 0
    invalidations_sent: int = 0
    downgrades: int = 0
    coherence_misses: int = 0


@dataclass(frozen=True)
class CoherenceOutcome:
    """Extra latency and traffic caused by a coherence action."""

    extra_latency: int
    invalidated_vcores: tuple


class Directory:
    """MSI directory covering one VM's shared L2.

    ``distance_fn(a, b)`` supplies the network distance between two VCores'
    home positions so invalidation cost reflects placement, as the paper's
    detailed model does.
    """

    def __init__(self, distance_fn: Optional[Callable[[int, int], int]] = None,
                 cycles_per_hop: int = 1, base_msg_latency: int = 1):
        self._lines: Dict[int, _LineEntry] = {}
        self._distance_fn = distance_fn or (lambda a, b: 1 if a != b else 0)
        self.cycles_per_hop = cycles_per_hop
        self.base_msg_latency = base_msg_latency
        self.stats = CoherenceStats()

    def _entry(self, line: int) -> _LineEntry:
        return self._lines.setdefault(line, _LineEntry())

    def _round_trip(self, a: int, b: int) -> int:
        """Invalidate + ack round-trip latency between two VCores."""
        hops = self._distance_fn(a, b)
        return 2 * (self.base_msg_latency + self.cycles_per_hop * hops)

    def state_of(self, line: int) -> CoherenceState:
        entry = self._lines.get(line)
        return entry.state if entry else CoherenceState.INVALID

    def sharers_of(self, line: int) -> Set[int]:
        entry = self._lines.get(line)
        return set(entry.sharers) if entry else set()

    def read(self, line: int, vcore: int) -> CoherenceOutcome:
        """VCore ``vcore`` fills ``line`` into its L1 for reading."""
        self.stats.reads += 1
        entry = self._entry(line)
        extra = 0
        invalidated = ()
        if entry.state is CoherenceState.MODIFIED and entry.owner != vcore:
            # Downgrade the remote owner M -> S (writeback to L2).
            assert entry.owner is not None
            extra = self._round_trip(vcore, entry.owner)
            entry.sharers = {entry.owner, vcore}
            entry.owner = None
            entry.state = CoherenceState.SHARED
            self.stats.downgrades += 1
            self.stats.coherence_misses += 1
        else:
            entry.sharers.add(vcore)
            if entry.state is CoherenceState.INVALID:
                entry.state = CoherenceState.SHARED
            elif entry.state is CoherenceState.MODIFIED:
                # Already owned by this VCore.
                entry.state = CoherenceState.MODIFIED
        return CoherenceOutcome(extra_latency=extra,
                                invalidated_vcores=invalidated)

    def write(self, line: int, vcore: int) -> CoherenceOutcome:
        """VCore ``vcore`` writes ``line``: invalidate all other sharers."""
        self.stats.writes += 1
        entry = self._entry(line)
        victims = tuple(s for s in entry.sharers if s != vcore)
        if entry.state is CoherenceState.MODIFIED and entry.owner not in (
            None,
            vcore,
        ):
            victims = tuple(set(victims) | {entry.owner})
        extra = 0
        if victims:
            # Invalidations proceed in parallel; latency is the farthest
            # round-trip, one message per victim is counted as traffic.
            extra = max(self._round_trip(vcore, v) for v in victims)
            self.stats.invalidations_sent += len(victims)
            self.stats.coherence_misses += 1
        entry.sharers = {vcore}
        entry.owner = vcore
        entry.state = CoherenceState.MODIFIED
        return CoherenceOutcome(extra_latency=extra, invalidated_vcores=victims)

    def evict(self, line: int, vcore: int) -> None:
        """VCore's L1 silently drops the line."""
        entry = self._lines.get(line)
        if entry is None:
            return
        entry.sharers.discard(vcore)
        if entry.owner == vcore:
            entry.owner = None
            entry.state = (
                CoherenceState.SHARED if entry.sharers else CoherenceState.INVALID
            )
        elif not entry.sharers:
            entry.state = CoherenceState.INVALID

    def attach_obs(self, scope) -> None:
        """Register gauges over the directory's coherence statistics."""
        scope.gauge("reads", lambda: self.stats.reads)
        scope.gauge("writes", lambda: self.stats.writes)
        scope.gauge("invalidations_sent",
                    lambda: self.stats.invalidations_sent)
        scope.gauge("downgrades", lambda: self.stats.downgrades)
        scope.gauge("coherence_misses", lambda: self.stats.coherence_misses)
        scope.gauge("tracked_lines", self.num_tracked_lines)

    def num_tracked_lines(self) -> int:
        return sum(
            1
            for e in self._lines.values()
            if e.state is not CoherenceState.INVALID
        )
