"""Configurable L2 built from distributed 64 KB Cache Banks.

Paper Section 3.5: "Any L2 Cache Bank in the system can be used by any
VCore ... Addresses are low-order interleaved by cache line across L2
Cache Banks ... Latency increases as L2 banks are further away from the
cache miss issuing Slice."  Paper Table 3 gives the hit delay as
``distance * 2 + 4`` cycles, and Section 5.4 notes the resulting average:
"an additional 2-cycles of communication delay for each additional 256KB
of cache".
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.cache.setassoc import AccessResult, SetAssociativeCache

#: Shared zero-bank miss result (frozen dataclass, safe to share).
_MISS = AccessResult(hit=False)

#: Paper Table 3 L2 bank geometry: 64 KB, 64 B lines, 4-way.
L2_BANK_BYTES = 64 * 1024
L2_LINE_BYTES = 64
L2_ASSOC = 4

#: Fixed component of the L2 hit delay (cycles), paper Table 3.
L2_BASE_LATENCY = 4
#: Cycles per unit of network distance to the bank, paper Table 3.
L2_CYCLES_PER_DISTANCE = 2


def l2_hit_latency(distance: int) -> int:
    """L2 hit delay for a bank at ``distance`` hops (paper Table 3)."""
    if distance < 0:
        raise ValueError("distance cannot be negative")
    return distance * L2_CYCLES_PER_DISTANCE + L2_BASE_LATENCY


def default_bank_distances(num_banks: int) -> List[int]:
    """Distances of a compact 2-D allocation around the requesting VCore.

    On the 2-D fabric the Manhattan ring at distance ``r`` holds ``4r``
    tiles, so a compact allocation fills rings outward: 4 banks at
    distance 1, 8 at distance 2, and so on.  Average latency therefore
    grows roughly with the square root of capacity, while the *marginal*
    bank added at the frontier matches the paper's "additional 2-cycles
    of communication delay for each additional 256KB" observation
    (Section 5.4).
    """
    distances: List[int] = []
    ring = 1
    while len(distances) < num_banks:
        take = min(4 * ring, num_banks - len(distances))
        distances.extend([ring] * take)
        ring += 1
    return distances


class L2Bank(SetAssociativeCache):
    """A single 64 KB L2 Cache Bank at a fixed network distance."""

    def __init__(self, bank_id: int, distance: int = 1):
        super().__init__(size_bytes=L2_BANK_BYTES, line_size=L2_LINE_BYTES,
                         assoc=L2_ASSOC, name=f"l2bank{bank_id}")
        self.bank_id = bank_id
        self.distance = distance

    @property
    def hit_latency(self) -> int:
        return l2_hit_latency(self.distance)

    def attach_obs(self, scope) -> None:
        """Attach counters plus this bank's placement/latency."""
        super().attach_obs(scope)
        scope.info("distance", self.distance)
        scope.info("hit_latency", self.hit_latency)


class BankedL2:
    """A VCore's L2: zero or more banks with low-order line interleaving."""

    def __init__(self, num_banks: int, distances: Optional[Sequence[int]] = None,
                 line_size: int = L2_LINE_BYTES):
        if num_banks < 0:
            raise ValueError("bank count cannot be negative")
        if distances is None:
            distances = default_bank_distances(num_banks)
        if len(distances) != num_banks:
            raise ValueError("one distance per bank required")
        self.line_size = line_size
        self.banks: List[L2Bank] = [
            L2Bank(bank_id=i, distance=d) for i, d in enumerate(distances)
        ]

    @property
    def num_banks(self) -> int:
        return len(self.banks)

    @property
    def size_kb(self) -> float:
        return self.num_banks * L2_BANK_BYTES / 1024

    def bank_for(self, address: int) -> Optional[L2Bank]:
        """Home bank of an address (low-order interleave by cache line)."""
        if not self.banks:
            return None
        line = address // self.line_size
        return self.banks[line % len(self.banks)]

    def _bank_local_address(self, address: int) -> int:
        """Address as seen inside the home bank.

        The low-order line bits select the bank, so the bank's internal
        set index must come from the *remaining* bits - otherwise lines
        mapping to one bank would collapse onto a handful of its sets.
        """
        line = address // self.line_size
        return (line // len(self.banks)) * self.line_size

    def access(self, address: int, is_write: bool = False):
        """Access the home bank; returns ``(AccessResult, latency)``.

        With zero banks every access misses with zero L2 latency (the
        request goes straight to memory), matching the paper's 0 KB L2
        configurations (Figure 13 starts at "0").

        The bank selection and bank-local address arithmetic of
        :meth:`bank_for` / :meth:`_bank_local_address` are inlined here:
        this is the hottest call in cache warmup and fast-forward.
        """
        banks = self.banks
        if not banks:
            return _MISS, 0
        num_banks = len(banks)
        line = address // self.line_size
        bank = banks[line % num_banks]
        result = bank.access((line // num_banks) * self.line_size,
                             is_write=is_write)
        return result, bank.distance * L2_CYCLES_PER_DISTANCE + L2_BASE_LATENCY

    def flush(self) -> int:
        """Flush all banks (reconfiguration); returns dirty lines written."""
        return sum(bank.flush() for bank in self.banks)

    def attach_obs(self, scope) -> None:
        """Attach aggregate gauges plus every bank under ``bank<i>``."""
        scope.gauge("hits", lambda: self.hits)
        scope.gauge("misses", lambda: self.misses)
        scope.gauge("miss_rate", lambda: self.miss_rate)
        scope.info("size_kb", self.size_kb)
        scope.info("num_banks", self.num_banks)
        for bank in self.banks:
            bank.attach_obs(scope.scope(f"bank{bank.bank_id}"))

    def mean_hit_latency(self) -> float:
        """Capacity-weighted average hit latency across banks."""
        if not self.banks:
            return 0.0
        return sum(b.hit_latency for b in self.banks) / len(self.banks)

    @property
    def hits(self) -> int:
        return sum(b.hits for b in self.banks)

    @property
    def misses(self) -> int:
        return sum(b.misses for b in self.banks)

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0
