"""Miss Status Holding Registers: non-blocking cache misses.

Paper Section 3.5: "the Sharing cache subsystem uses non-blocking caches";
Table 2 bounds in-flight loads at 8 per Slice.  An MSHR file tracks
outstanding misses, merges secondary misses to the same line, and refuses
new primary misses when full (back-pressuring the issue stage).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Paper Table 2: Maximum In-flight Loads.
DEFAULT_MSHR_ENTRIES = 8


@dataclass
class MSHREntry:
    """One outstanding miss: the line and the instructions waiting on it."""

    line: int
    fill_cycle: int
    waiters: List[int] = field(default_factory=list)


class MSHRFile:
    """Tracks outstanding misses for one Slice's L1D."""

    def __init__(self, capacity: int = DEFAULT_MSHR_ENTRIES, line_size: int = 64):
        if capacity < 1:
            raise ValueError("MSHR file needs capacity >= 1")
        self.capacity = capacity
        self.line_size = line_size
        self._entries: Dict[int, MSHREntry] = {}
        self.primary_misses = 0
        self.secondary_merges = 0
        self.full_stalls = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def lookup(self, address: int) -> Optional[MSHREntry]:
        return self._entries.get(address // self.line_size)

    def allocate(self, address: int, fill_cycle: int,
                 waiter_seq: int) -> Optional[MSHREntry]:
        """Register a miss.

        Returns the entry, merging into an existing one for the same line
        (a *secondary* miss costs no new entry and inherits the earlier
        fill time).  Returns ``None`` when a new entry is needed but the
        file is full: the access must retry.
        """
        line = address // self.line_size
        entry = self._entries.get(line)
        if entry is not None:
            entry.waiters.append(waiter_seq)
            self.secondary_merges += 1
            return entry
        if self.full:
            self.full_stalls += 1
            return None
        entry = MSHREntry(line=line, fill_cycle=fill_cycle, waiters=[waiter_seq])
        self._entries[line] = entry
        self.primary_misses += 1
        return entry

    def attach_obs(self, scope) -> None:
        """Register gauges over the MSHR counters (no hot-path cost)."""
        scope.gauge("primary_misses", lambda: self.primary_misses)
        scope.gauge("secondary_merges", lambda: self.secondary_merges)
        scope.gauge("full_stalls", lambda: self.full_stalls)
        scope.gauge("outstanding", lambda: len(self._entries))
        scope.info("capacity", self.capacity)

    def earliest_fill(self) -> Optional[int]:
        """Cycle at which the oldest outstanding miss fills, if any."""
        if not self._entries:
            return None
        return min(e.fill_cycle for e in self._entries.values())

    def retire_filled(self, now: int) -> List[MSHREntry]:
        """Remove and return all entries whose fill has arrived by ``now``."""
        done = [e for e in self._entries.values() if e.fill_cycle <= now]
        for entry in done:
            del self._entries[entry.line]
        return done

    def flush(self) -> int:
        n = len(self._entries)
        self._entries.clear()
        return n
