"""Full cache hierarchy for one Slice's data accesses.

Composes the per-Slice L1D, the VCore's banked L2, MSHRs and the store
buffer into a single timed access path:

    L1D hit                      -> 3 cycles (Table 3)
    L1D miss, L2 hit             -> 3 + network + distance*2+4
    L1D miss, L2 miss (or 0 KB)  -> 3 + network + L2 + 100 (memory delay)

The network component is the switched-interconnect request/response cost
already folded into the L2 bank's ``distance * 2 + 4`` hit delay, which is
how the paper's Table 3 expresses it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cache.l1 import L1Cache
from repro.cache.l2 import BankedL2
from repro.cache.mshr import MSHRFile
from repro.cache.storebuffer import StoreBuffer

#: Paper Table 2: Memory Delay.
MEMORY_LATENCY = 100


@dataclass(frozen=True)
class MemoryAccessOutcome:
    """Timing and classification of one data access."""

    complete_cycle: int
    l1_hit: bool
    l2_hit: bool
    from_store_buffer: bool = False
    mshr_merged: bool = False
    mshr_stalled: bool = False

    @property
    def latency_class(self) -> str:
        if self.from_store_buffer:
            return "store_forward"
        if self.l1_hit:
            return "l1"
        if self.l2_hit:
            return "l2"
        return "memory"


class CacheHierarchy:
    """The timed data-access path of one Slice."""

    def __init__(self, l1d: Optional[L1Cache] = None,
                 l2: Optional[BankedL2] = None,
                 mshr: Optional[MSHRFile] = None,
                 store_buffer: Optional[StoreBuffer] = None,
                 memory_latency: int = MEMORY_LATENCY):
        # Explicit None checks: empty MSHR files and store buffers are
        # falsy (they define __len__), so ``or`` would discard them.
        self.l1d = l1d if l1d is not None else L1Cache(name="l1d")
        self.l2 = l2 if l2 is not None else BankedL2(num_banks=2)
        self.mshr = (mshr if mshr is not None
                     else MSHRFile(line_size=self.l1d.line_size))
        self.store_buffer = (store_buffer if store_buffer is not None
                             else StoreBuffer())
        self.memory_latency = memory_latency
        self.loads = 0
        self.stores = 0

    def attach_obs(self, scope) -> None:
        """Attach the whole data path: L1D, MSHRs, store-buffer gauges."""
        scope.gauge("loads", lambda: self.loads)
        scope.gauge("stores", lambda: self.stores)
        self.l1d.attach_obs(scope.scope("l1d"))
        self.mshr.attach_obs(scope.scope("mshr"))
        sb = self.store_buffer
        sb_scope = scope.scope("store_buffer")
        sb_scope.gauge("inserted", lambda: sb.total_inserted)
        sb_scope.gauge("full_stalls", lambda: sb.full_stalls)
        sb_scope.gauge("occupancy", lambda: len(sb))

    def access(self, address: int, is_write: bool, now: int) -> MemoryAccessOutcome:
        """Perform a timed access starting at cycle ``now``."""
        if is_write:
            self.stores += 1
        else:
            self.loads += 1

        # Store-to-load forwarding from the store buffer is free beyond L1.
        if not is_write and self.store_buffer.forwards(address,
                                                       self.l1d.line_size):
            return MemoryAccessOutcome(
                complete_cycle=now + self.l1d.hit_latency,
                l1_hit=True,
                l2_hit=False,
                from_store_buffer=True,
            )

        # A line whose fill is still in flight must wait for that fill,
        # even though the tag was already installed by the primary miss.
        in_flight = self.mshr.lookup(address)
        if in_flight is not None:
            self.mshr.allocate(address, fill_cycle=in_flight.fill_cycle,
                               waiter_seq=-1)
            self.l1d.access(address, is_write=is_write)  # LRU touch
            return MemoryAccessOutcome(
                complete_cycle=max(in_flight.fill_cycle,
                                   now + self.l1d.hit_latency),
                l1_hit=False,
                l2_hit=True,  # piggybacks on the earlier fill
                mshr_merged=True,
            )

        l1_result = self.l1d.access(address, is_write=is_write)
        if l1_result.hit:
            return MemoryAccessOutcome(
                complete_cycle=now + self.l1d.hit_latency,
                l1_hit=True,
                l2_hit=False,
            )

        l2_result, l2_latency = self.l2.access(address, is_write=is_write)
        fill = now + self.l1d.hit_latency + l2_latency
        l2_hit = l2_result.hit
        if not l2_hit:
            fill += self.memory_latency

        entry = self.mshr.allocate(address, fill_cycle=fill, waiter_seq=-1)
        if entry is None:
            # MSHR full: the access retries after the oldest fill returns.
            earliest = self.mshr.earliest_fill()
            retry_at = earliest if earliest is not None else fill
            return MemoryAccessOutcome(
                complete_cycle=max(retry_at, fill) + 1,
                l1_hit=False,
                l2_hit=l2_hit,
                mshr_stalled=True,
            )
        return MemoryAccessOutcome(
            complete_cycle=fill,
            l1_hit=False,
            l2_hit=l2_hit,
        )

    def tick(self, now: int) -> None:
        """Per-cycle housekeeping: retire filled MSHRs, drain one store."""
        self.mshr.retire_filled(now)
        drained = self.store_buffer.drain_one(now)
        if drained is not None:
            # The draining store performs its cache access off the critical
            # path; charge only occupancy, not core stall time.
            self.l1d.access(drained.address, is_write=True)

    def commit_store(self, address: int, now: int) -> bool:
        """Place a committing store into the store buffer."""
        return self.store_buffer.push(address, commit_cycle=now)

    def flush_all(self) -> int:
        """Reconfiguration flush: L1 + all L2 banks; returns dirty lines."""
        dirty = self.l1d.flush()
        dirty += self.l2.flush()
        self.mshr.flush()
        self.store_buffer.flush()
        return dirty
