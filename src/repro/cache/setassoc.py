"""Generic set-associative cache with true-LRU replacement.

The building block for every cache in the hierarchy.  Tracks tags only
(the simulator never needs data values), plus dirty bits so reconfiguration
flush costs can be charged (paper Section 3.8: reallocating an L2 bank
requires flushing it to main memory).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.obs.registry import NULL_SCOPE


def _is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


@dataclass(frozen=True)
class AccessResult:
    """Outcome of a cache access."""

    hit: bool
    evicted_line: Optional[int] = None
    evicted_dirty: bool = False
    writeback: bool = False

    @property
    def miss(self) -> bool:
        return not self.hit


#: Shared results for the two overwhelmingly common outcomes; the access
#: path only allocates an ``AccessResult`` when a miss actually evicts.
#: (``AccessResult`` is frozen, so sharing instances is safe.)
_HIT = AccessResult(hit=True)
_MISS_NO_EVICT = AccessResult(hit=False)


class SetAssociativeCache:
    """Tag-only set-associative cache model.

    Parameters follow paper Table 3 conventions: sizes in bytes, 64-byte
    lines, per-level associativity.
    """

    def __init__(self, size_bytes: int, line_size: int = 64, assoc: int = 2,
                 name: str = "cache"):
        if size_bytes <= 0:
            raise ValueError("cache size must be positive")
        if not _is_power_of_two(line_size):
            raise ValueError("line size must be a power of two")
        if assoc < 1:
            raise ValueError("associativity must be >= 1")
        num_lines = size_bytes // line_size
        if num_lines < assoc:
            raise ValueError(
                f"{name}: {size_bytes}B cache cannot hold {assoc} ways"
            )
        if num_lines % assoc:
            raise ValueError(f"{name}: lines ({num_lines}) not divisible by ways")
        self.name = name
        self.size_bytes = size_bytes
        self.line_size = line_size
        self.assoc = assoc
        self.num_sets = num_lines // assoc
        # set index -> OrderedDict {line_addr: dirty}; order = LRU..MRU
        self._sets: Dict[int, "OrderedDict[int, bool]"] = {}
        self.hits = 0
        self.misses = 0
        self.writebacks = 0
        self._obs = NULL_SCOPE

    def _set_index(self, line: int) -> int:
        return line % self.num_sets

    def line_of(self, address: int) -> int:
        return address // self.line_size

    def access(self, address: int, is_write: bool = False) -> AccessResult:
        """Access ``address``; allocate on miss; returns hit/eviction info."""
        line = address // self.line_size
        idx = line % self.num_sets
        ways = self._sets.get(idx)
        if ways is None:
            ways = self._sets[idx] = OrderedDict()
        if line in ways:
            self.hits += 1
            if is_write and not ways[line]:
                ways[line] = True  # dirty update keeps dict position
            ways.move_to_end(line)  # MRU
            return _HIT
        self.misses += 1
        if len(ways) >= self.assoc:
            evicted_line, evicted_dirty = ways.popitem(last=False)
            ways[line] = is_write
            if evicted_dirty:
                self.writebacks += 1
            return AccessResult(
                hit=False,
                evicted_line=evicted_line,
                evicted_dirty=evicted_dirty,
                writeback=evicted_dirty,
            )
        ways[line] = is_write
        return _MISS_NO_EVICT

    def prefetch(self, address: int) -> None:
        """Install a line without touching hit/miss statistics.

        Used by the L1I next-line predictor (paper Section 3.5): the
        prefetcher runs ahead of fetch, so its fills are not demand
        accesses.
        """
        line = address // self.line_size
        idx = line % self.num_sets
        ways = self._sets.get(idx)
        if ways is None:
            ways = self._sets[idx] = OrderedDict()
        if line in ways:
            ways.move_to_end(line)
            return
        if len(ways) >= self.assoc:
            _, evicted_dirty = ways.popitem(last=False)
            if evicted_dirty:
                self.writebacks += 1
        ways[line] = False

    def probe(self, address: int) -> bool:
        """Check residency without touching LRU state or statistics."""
        line = self.line_of(address)
        ways = self._sets.get(self._set_index(line))
        return bool(ways) and line in ways

    def invalidate(self, address: int) -> bool:
        """Drop a line (coherence invalidation); returns whether it was dirty."""
        line = self.line_of(address)
        ways = self._sets.get(self._set_index(line))
        if ways and line in ways:
            return ways.pop(line)
        return False

    def flush(self) -> int:
        """Empty the cache; returns the number of dirty lines written back.

        Models the reconfiguration flush of paper Section 3.8.
        """
        dirty = sum(
            1 for ways in self._sets.values() for d in ways.values() if d
        )
        self.writebacks += dirty
        self._sets.clear()
        return dirty

    def attach_obs(self, scope) -> None:
        """Attach this cache to an observability scope.

        Registers gauges over the existing counters, so the hot access
        path is untouched - statistics are sampled only when the
        registry snapshots (see the overhead contract in
        :mod:`repro.obs.registry`).
        """
        self._obs = scope
        scope.gauge("hits", lambda: self.hits)
        scope.gauge("misses", lambda: self.misses)
        scope.gauge("writebacks", lambda: self.writebacks)
        scope.gauge("miss_rate", lambda: self.miss_rate)
        scope.gauge("occupancy", self.occupancy)
        scope.info("geometry", {
            "size_bytes": self.size_bytes,
            "line_size": self.line_size,
            "assoc": self.assoc,
            "sets": self.num_sets,
        })

    def reset_counters(self) -> None:
        """Zero the statistics counters (content is kept).

        Used after functional cache warmup so steady-state miss rates are
        reported for the timed region only.
        """
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def resident_lines(self) -> List[int]:
        return [line for ways in self._sets.values() for line in ways]

    def occupancy(self) -> int:
        return sum(len(ways) for ways in self._sets.values())
