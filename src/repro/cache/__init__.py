"""Cache hierarchy substrate.

Models the Sharing Architecture memory system (paper Sections 3.5-3.6 and
Table 3): per-Slice 16 KB 2-way L1 I/D caches with a 3-cycle hit, a sea of
64 KB 4-way L2 Cache Banks reachable over the switched network with a hit
delay of ``distance * 2 + 4``, low-order cache-line interleaving across
banks, non-blocking misses, a small store buffer per Slice, and an MSI
directory at the L2 for inter-VCore coherence.
"""

from repro.cache.setassoc import SetAssociativeCache, AccessResult
from repro.cache.l1 import L1Cache, L1_HIT_LATENCY
from repro.cache.l2 import L2Bank, BankedL2, l2_hit_latency
from repro.cache.storebuffer import StoreBuffer
from repro.cache.mshr import MSHRFile
from repro.cache.coherence import Directory, CoherenceState, CoherenceStats
from repro.cache.hierarchy import CacheHierarchy, MemoryAccessOutcome

__all__ = [
    "SetAssociativeCache",
    "AccessResult",
    "L1Cache",
    "L1_HIT_LATENCY",
    "L2Bank",
    "BankedL2",
    "l2_hit_latency",
    "StoreBuffer",
    "MSHRFile",
    "Directory",
    "CoherenceState",
    "CoherenceStats",
    "CacheHierarchy",
    "MemoryAccessOutcome",
]
