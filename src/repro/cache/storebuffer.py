"""Per-Slice store buffer.

Paper Table 2 gives each Slice a small (8-entry) store buffer; together
with non-blocking caches it prevents the core from stalling on store
traffic (Section 3.5).  Stores drain to the cache in FIFO order.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

#: Paper Table 2: Store Buffer Size.
DEFAULT_STORE_BUFFER_SIZE = 8


@dataclass(frozen=True)
class BufferedStore:
    """A committed store waiting to drain to the memory system."""

    address: int
    commit_cycle: int


class StoreBuffer:
    """FIFO buffer of committed stores draining one per cycle."""

    def __init__(self, capacity: int = DEFAULT_STORE_BUFFER_SIZE):
        if capacity < 1:
            raise ValueError("store buffer needs capacity >= 1")
        self.capacity = capacity
        self._entries: Deque[BufferedStore] = deque()
        self.total_inserted = 0
        self.full_stalls = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def push(self, address: int, commit_cycle: int) -> bool:
        """Insert a committed store; ``False`` (stall) when full."""
        if self.full:
            self.full_stalls += 1
            return False
        self._entries.append(BufferedStore(address, commit_cycle))
        self.total_inserted += 1
        return True

    def drain_one(self, now: int) -> Optional[BufferedStore]:
        """Pop the oldest store once it has been buffered for a cycle."""
        if self._entries and self._entries[0].commit_cycle < now:
            return self._entries.popleft()
        return None

    def forwards(self, address: int, line_size: int = 64) -> bool:
        """Would a load to ``address`` hit in the buffer (store forwarding)?"""
        line = address // line_size
        return any(s.address // line_size == line for s in self._entries)

    def flush(self) -> int:
        """Drop all entries (used on VCore teardown); returns count."""
        n = len(self._entries)
        self._entries.clear()
        return n
