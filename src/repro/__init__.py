"""repro - The Sharing Architecture: sub-core configurability for IaaS clouds.

A full reproduction of Zhou & Wentzlaff, ASPLOS 2014.  The package layers:

* :mod:`repro.isa`, :mod:`repro.trace` - instruction substrate and the
  synthetic workload generator standing in for GEM5 traces;
* :mod:`repro.network`, :mod:`repro.cache` - switched on-chip networks
  and the distributed cache hierarchy;
* :mod:`repro.core` - Slices, VCores and the SSim cycle-level simulator
  (the paper's primary contribution);
* :mod:`repro.area` - the published 45 nm area decomposition;
* :mod:`repro.perfmodel` - the analytic ``P(c, s)`` model driving the
  evaluation sweeps;
* :mod:`repro.economics` - utility functions, markets, optimisers and
  market-efficiency comparisons;
* :mod:`repro.cloud` - fabric, hypervisor, scheduler, meta-programs and
  auto-tuner;
* :mod:`repro.baselines` - static fixed and heterogeneous baselines;
* :mod:`repro.engine` - the parallel sweep engine with its persistent
  result cache and run metrics;
* :mod:`repro.experiments` - one runner per paper table and figure.

Quickstart::

    from repro import AnalyticModel, UtilityOptimizer, MARKET2, UTILITY2

    model = AnalyticModel()
    print(model.performance("gcc", cache_kb=512, slices=4))

    optimizer = UtilityOptimizer(model=model)
    choice = optimizer.best("gcc", UTILITY2, MARKET2)
    print(choice.cache_kb, choice.slices, choice.vcores)

Sweep-engine quickstart (parallel fan-out + on-disk result cache)::

    from repro import SweepEngine, SweepSpec

    engine = SweepEngine(jobs=4)
    sweep = engine.run(SweepSpec(benchmarks=("gcc", "bzip")))
    print(sweep.grid("gcc")[(512.0, 4)], sweep.cache_hits)
"""

from repro.area import AreaModel
from repro.core import SharingSimulator, SimConfig, SimResult, VCore
from repro.core.simulator import simulate
from repro.economics import (
    MARKET1,
    MARKET2,
    MARKET3,
    STANDARD_MARKETS,
    STANDARD_UTILITIES,
    UTILITY1,
    UTILITY2,
    UTILITY3,
    Market,
    MarketEfficiencyComparison,
    UtilityFunction,
    UtilityOptimizer,
)
from repro.engine import (
    GridModel,
    ResultCache,
    RunMetrics,
    SweepEngine,
    SweepResult,
    SweepSpec,
)
from repro.experiments.base import Experiment, ExperimentResult
from repro.perfmodel import AnalyticModel, CACHE_GRID_KB, SLICE_GRID
from repro.trace import (
    BenchmarkProfile,
    SyntheticTraceGenerator,
    Trace,
    all_benchmarks,
    generate_trace,
    get_profile,
)
from repro.trace.generator import make_workload

__version__ = "1.0.0"

__all__ = [
    "AreaModel",
    "SharingSimulator",
    "SimConfig",
    "SimResult",
    "VCore",
    "simulate",
    "MARKET1",
    "MARKET2",
    "MARKET3",
    "STANDARD_MARKETS",
    "STANDARD_UTILITIES",
    "UTILITY1",
    "UTILITY2",
    "UTILITY3",
    "Market",
    "MarketEfficiencyComparison",
    "UtilityFunction",
    "UtilityOptimizer",
    "AnalyticModel",
    "CACHE_GRID_KB",
    "SLICE_GRID",
    "Experiment",
    "ExperimentResult",
    "GridModel",
    "ResultCache",
    "RunMetrics",
    "SweepEngine",
    "SweepResult",
    "SweepSpec",
    "BenchmarkProfile",
    "SyntheticTraceGenerator",
    "Trace",
    "all_benchmarks",
    "generate_trace",
    "get_profile",
    "make_workload",
    "__version__",
]
