"""Simulator configuration.

Defaults reproduce the paper's base configuration:

* Table 2 (Base Slice Configuration): issue window 32, load/store queue
  32, 2 functional units per Slice, ROB 64, 128 global physical registers,
  store buffer 8, 64 local registers per Slice, 8 in-flight loads, and a
  100-cycle memory delay.
* Table 3 (Base Cache Configurations): 16 KB 2-way L1I/L1D with 3-cycle
  hits, 64 KB 4-way L2 banks with ``distance * 2 + 4`` hit delay.

SSim "is very flexible, allowing all critical micro-architecture
parameters and latencies to be set from a XML configuration file"
(Section 5.2) - :meth:`SimConfig.from_xml` preserves that interface.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field, fields, is_dataclass, replace
from typing import Any, Dict, List, Optional, Sequence

from repro.cache.l2 import default_bank_distances

#: Paper Equation 3: valid Slice counts per VCore.
MIN_SLICES = 1
MAX_SLICES = 8
#: Paper Equation 3: maximum L2 per VCore (8 MB).
MAX_CACHE_KB = 8192.0


@dataclass(frozen=True)
class SliceConfig:
    """Per-Slice micro-architecture parameters (paper Table 2)."""

    fetch_width: int = 2
    issue_window_size: int = 32
    lsq_size: int = 32
    num_functional_units: int = 2  # 1 ALU(+MUL) + 1 LSU
    rob_size: int = 64
    num_local_registers: int = 64
    store_buffer_size: int = 8
    max_inflight_loads: int = 8
    commit_width: int = 2
    instruction_buffer_size: int = 16
    mul_latency: int = 3
    branch_predictor_entries: int = 1024
    btb_entries: int = 512
    #: "bimodal" (the paper's default) or "gshare" (the Section 3.1
    #: alternative requiring a composed Global History Register).
    predictor_kind: str = "bimodal"

    def __post_init__(self) -> None:
        if self.predictor_kind not in ("bimodal", "gshare"):
            raise ValueError(
                f"predictor_kind must be 'bimodal' or 'gshare', "
                f"got {self.predictor_kind!r}"
            )
        positive = (
            "fetch_width",
            "issue_window_size",
            "lsq_size",
            "num_functional_units",
            "rob_size",
            "num_local_registers",
            "store_buffer_size",
            "max_inflight_loads",
            "commit_width",
            "instruction_buffer_size",
            "mul_latency",
            "branch_predictor_entries",
            "btb_entries",
        )
        for name in positive:
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")


@dataclass(frozen=True)
class CacheLevelConfig:
    """One cache level's geometry and timing (paper Table 3 row)."""

    size_kb: float
    block_bytes: int = 64
    assoc: int = 2
    hit_delay: int = 3

    def __post_init__(self) -> None:
        if self.size_kb < 0:
            raise ValueError("cache size cannot be negative")
        if self.block_bytes < 1 or self.assoc < 1 or self.hit_delay < 0:
            raise ValueError("invalid cache level parameters")


@dataclass(frozen=True)
class CacheConfig:
    """Cache hierarchy parameters (paper Table 3)."""

    l1i: CacheLevelConfig = field(
        default_factory=lambda: CacheLevelConfig(size_kb=16, assoc=2, hit_delay=3)
    )
    l1d: CacheLevelConfig = field(
        default_factory=lambda: CacheLevelConfig(size_kb=16, assoc=2, hit_delay=3)
    )
    l2_bank_kb: float = 64.0
    l2_assoc: int = 4
    memory_delay: int = 100


@dataclass(frozen=True)
class VCoreConfig:
    """A VCore composition: Slice count plus L2 allocation.

    ``l2_bank_distances`` optionally pins each bank's network distance;
    by default banks pack in rings of four around the VCore (256 KB per
    ring), reproducing the paper's latency growth (Section 5.4).
    """

    num_slices: int = 1
    l2_cache_kb: float = 128.0
    l2_bank_distances: Optional[Sequence[int]] = None

    def __post_init__(self) -> None:
        if not MIN_SLICES <= self.num_slices <= MAX_SLICES:
            raise ValueError(
                f"Slice count {self.num_slices} outside paper Equation 3 "
                f"range [{MIN_SLICES}, {MAX_SLICES}]"
            )
        if not 0 <= self.l2_cache_kb <= MAX_CACHE_KB:
            raise ValueError(
                f"L2 size {self.l2_cache_kb} KB outside [0, {MAX_CACHE_KB}]"
            )

    @property
    def num_l2_banks(self) -> int:
        return int(round(self.l2_cache_kb / 64.0))

    def bank_distances(self) -> List[int]:
        if self.l2_bank_distances is not None:
            dists = list(self.l2_bank_distances)
            if len(dists) != self.num_l2_banks:
                raise ValueError("one distance per L2 bank required")
            return dists
        return default_bank_distances(self.num_l2_banks)


@dataclass(frozen=True)
class SimConfig:
    """Complete SSim configuration."""

    slice_config: SliceConfig = field(default_factory=SliceConfig)
    cache_config: CacheConfig = field(default_factory=CacheConfig)
    vcore: VCoreConfig = field(default_factory=VCoreConfig)
    #: Extra rename pipeline depth for multi-Slice global rename (the
    #: send-to-master / broadcast / correct steps of Section 3.2.1).
    global_rename_depth: int = 2
    #: Front-end depth from fetch to rename (cycles).
    frontend_depth: int = 3
    #: Branch misprediction redirect penalty beyond resolution (cycles).
    mispredict_redirect: int = 2
    #: Pre-commit pointer synchronisation delay for multi-Slice VCores
    #: (Core Fusion style distributed ROB, Section 3.7).
    precommit_sync: int = 3
    #: Model link-level contention on the operand network.
    model_contention: bool = False
    #: Number of parallel operand networks (ablation: the paper found a
    #: second network buys only ~1%, Section 5.1).
    operand_network_channels: int = 1
    #: Fetch-to-Slice assignment: "pc" is the paper's static interleave
    #: ("the same PC is always fetched by the same Slice", Section 3.1);
    #: "dynamic" rotates by dynamic position, which scatters each static
    #: branch across Slices' predictors (ablation).
    fetch_assignment: str = "pc"
    #: Conservative ordered LSQ (ablation): loads wait for every older
    #: store to resolve instead of issuing speculatively with
    #: violation-replay (the paper's unordered, late-binding design).
    ordered_lsq: bool = False
    max_cycles: int = 2_000_000
    #: Simulator implementation: "python" is the scalar reference
    #: (``SharingSimulator``), "batched" the structure-of-arrays backend
    #: (``repro.core.batched``, bit-identical stats, many configurations
    #: per pass).  Part of ``fingerprint()``, so engine work-unit cache
    #: entries from the two backends never alias.
    backend: str = "python"

    def __post_init__(self) -> None:
        if self.fetch_assignment not in ("pc", "dynamic"):
            raise ValueError(
                f"fetch_assignment must be 'pc' or 'dynamic', "
                f"got {self.fetch_assignment!r}"
            )
        if self.backend not in ("python", "batched"):
            raise ValueError(
                f"backend must be 'python' or 'batched', "
                f"got {self.backend!r}"
            )

    def with_vcore(self, num_slices: int, l2_cache_kb: float) -> "SimConfig":
        """A copy of this config with a different VCore composition."""
        return replace(
            self, vcore=VCoreConfig(num_slices=num_slices, l2_cache_kb=l2_cache_kb)
        )

    def fingerprint(self) -> Dict[str, Any]:
        """Every result-affecting field as a stable, JSON-able mapping.

        Built by walking the dataclass fields *recursively*, so a field
        added to :class:`SliceConfig`, :class:`CacheConfig`,
        :class:`VCoreConfig` or :class:`SimConfig` itself automatically
        enters every result-cache key - a hand-maintained field list
        could silently alias results for configs differing only in a
        forgotten knob.
        """

        def _encode(value: Any) -> Any:
            if is_dataclass(value) and not isinstance(value, type):
                return {
                    f.name: _encode(getattr(value, f.name))
                    for f in fields(value)
                }
            if isinstance(value, (list, tuple)):
                return [_encode(v) for v in value]
            return value

        return _encode(self)

    # ------------------------------------------------------------------
    # XML interface (paper Section 5.2)
    # ------------------------------------------------------------------

    @classmethod
    def from_xml(cls, xml_text: str) -> "SimConfig":
        """Parse a SimConfig from SSim's XML configuration format.

        Example::

            <ssim>
              <slice issue_window_size="32" rob_size="64"/>
              <cache l2_bank_kb="64" memory_delay="100"/>
              <vcore num_slices="4" l2_cache_kb="512"/>
              <timing global_rename_depth="2" frontend_depth="3"/>
            </ssim>
        """
        root = ET.fromstring(xml_text)
        if root.tag != "ssim":
            raise ValueError(f"expected <ssim> root, got <{root.tag}>")

        def _typed(dc_cls, elem):
            if elem is None:
                return dc_cls()
            kwargs = {}
            valid = {f.name: f.type for f in fields(dc_cls)}
            for key, raw in elem.attrib.items():
                if key not in valid:
                    raise ValueError(f"unknown {dc_cls.__name__} field {key!r}")
                kwargs[key] = float(raw) if "." in raw else int(raw)
            return dc_cls(**kwargs)

        slice_cfg = _typed(SliceConfig, root.find("slice"))
        vcore_cfg = _typed(VCoreConfig, root.find("vcore"))

        cache_elem = root.find("cache")
        cache_kwargs = {}
        if cache_elem is not None:
            for key in ("l2_bank_kb", "l2_assoc", "memory_delay"):
                if key in cache_elem.attrib:
                    raw = cache_elem.attrib[key]
                    cache_kwargs[key] = float(raw) if "." in raw else int(raw)
        cache_cfg = CacheConfig(**cache_kwargs)

        timing = root.find("timing")
        timing_kwargs = {}
        if timing is not None:
            for key, raw in timing.attrib.items():
                timing_kwargs[key] = int(raw)
        return cls(
            slice_config=slice_cfg,
            cache_config=cache_cfg,
            vcore=vcore_cfg,
            **timing_kwargs,
        )

    def to_xml(self) -> str:
        """Serialise the VCore-level knobs back to the XML format."""
        root = ET.Element("ssim")
        ET.SubElement(
            root,
            "slice",
            issue_window_size=str(self.slice_config.issue_window_size),
            rob_size=str(self.slice_config.rob_size),
            lsq_size=str(self.slice_config.lsq_size),
        )
        ET.SubElement(
            root,
            "cache",
            l2_bank_kb=str(self.cache_config.l2_bank_kb),
            memory_delay=str(self.cache_config.memory_delay),
        )
        ET.SubElement(
            root,
            "vcore",
            num_slices=str(self.vcore.num_slices),
            l2_cache_kb=str(self.vcore.l2_cache_kb),
        )
        ET.SubElement(
            root,
            "timing",
            global_rename_depth=str(self.global_rename_depth),
            frontend_depth=str(self.frontend_depth),
            mispredict_redirect=str(self.mispredict_redirect),
            precommit_sync=str(self.precommit_sync),
        )
        return ET.tostring(root, encoding="unicode")
