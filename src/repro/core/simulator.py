"""SSim: the trace-driven cycle-level simulator (paper Section 5.2).

Models every subsystem of the Sharing Architecture per cycle:

* **fetch** - interleaved two-per-Slice fetch with per-Slice bimodal
  predictor + BTB and an L1 I-cache with next-line prefetch (Section 3.1,
  3.5); a stall anywhere in the front end stalls every Slice.
* **rename** - two-stage global/local rename; multi-Slice VCores pay the
  master-broadcast pipeline depth (Section 3.2); remote source operands
  generate request/reply traffic on the Scalar Operand Network and are
  cached in the consumer's LRF.
* **issue** - separate per-Slice ALU and memory windows; oldest-first
  ready selection with the one-cycle-early remote wakeup folded into
  operand arrival times (Section 3.3).
* **execute** - one ALU (+ multiplier) and one load/store unit per Slice;
  operand transport on the switched SON at 2 cycles nearest-neighbour
  plus 1 per extra hop (Section 3.4).
* **memory** - loads/stores sorted to their address-interleaved home
  Slice, unordered age-tagged LSQ banks with store-commit violation
  search, store buffers, non-blocking caches, distance-priced L2 banks
  (Sections 3.5-3.6).
* **commit** - distributed ROB with Core Fusion style pre-commit pointer
  synchronisation (Section 3.7).

The simulator is trace-driven: wrong-path instructions are not executed;
a mispredicted branch instead stalls fetch until resolution plus the
redirect penalty, and a memory-order violation squashes and refetches
from the violating load.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.config import SimConfig
from repro.core.dyninst import DynInst, NEVER, PENDING
from repro.core.rename import RenameStallError, rename_pipeline_depth
from repro.core.stats import SimStats
from repro.core.vcore import VCore
from repro.isa import Instruction, OpClass
from repro.obs import OBS_OFF, Observability
from repro.trace.records import Trace


class SimulationTimeout(RuntimeError):
    """The cycle budget ran out before the trace committed."""


@dataclass
class SimResult:
    """Outcome of one SSim run.

    Exact runs leave the sampling fields at their defaults.  Sampled
    runs (see :mod:`repro.sampling`) report *extrapolated* ``stats``
    plus the 95% confidence interval on IPC and a summary of the
    sampling schedule that produced them.
    """

    benchmark: str
    num_slices: int
    l2_cache_kb: float
    stats: SimStats
    #: True when ``stats`` are extrapolated from sampled detail windows.
    sampled: bool = False
    #: 95% confidence interval on IPC (lo, hi); ``None`` for exact runs.
    ipc_ci: Optional[Tuple[float, float]] = None
    #: Sampling-schedule summary (a ``repro.sampling`` dataclass).
    sampling: Optional[Any] = None

    @property
    def cycles(self) -> int:
        return self.stats.cycles

    @property
    def ipc(self) -> float:
        return self.stats.ipc

    def performance(self) -> float:
        """Instructions per cycle - the ``P(c, s)`` the economics consume."""
        return self.stats.ipc


class SharingSimulator:
    """Cycle-level simulation of one trace on one VCore configuration.

    ``warmup_trace``, when given, is replayed *functionally* (cache state
    only, no timing) before the timed region, so short timed traces see
    steady-state miss rates rather than a cold-cache compulsory-miss wall.
    This substitutes for the fast-forward phase of the paper's full-length
    GEM5 trace runs.
    """

    def __init__(self, trace: Trace, config: Optional[SimConfig] = None,
                 num_slices: Optional[int] = None,
                 l2_cache_kb: Optional[float] = None,
                 warmup_trace: Optional[Trace] = None,
                 warmup_addresses: Optional[Sequence[int]] = None,
                 timeout: Optional[int] = None,
                 obs: Optional[Observability] = None):
        self.trace = trace
        cfg = config or SimConfig()
        if num_slices is not None or l2_cache_kb is not None:
            cfg = cfg.with_vcore(
                num_slices=(num_slices if num_slices is not None
                            else cfg.vcore.num_slices),
                l2_cache_kb=(l2_cache_kb if l2_cache_kb is not None
                             else cfg.vcore.l2_cache_kb),
            )
        if timeout is not None:
            cfg = replace(cfg, max_cycles=timeout)
        self.config = cfg
        self.vcore = VCore(self.config)
        self.stats = SimStats()
        if warmup_trace is not None:
            self._warm_caches(warmup_trace)
        if warmup_addresses is not None:
            self._warm_data_caches(warmup_addresses)

        # Observability: attach after warmup so gauges read timed-region
        # counters.  With OBS_OFF everything binds to shared null objects
        # and the cycle loop's emit calls are no-ops (see repro.obs).
        self.obs = obs if obs is not None else OBS_OFF
        self._tracer = self.obs.tracer
        if self.obs.enabled:
            self.vcore.attach_obs(self.obs.registry.scope("sim"),
                                  tracer=self._tracer)
            for sid in range(self.vcore.num_slices):
                self._tracer.set_thread_name(sid, f"slice{sid}")

        self._rename_depth = rename_pipeline_depth(
            self.vcore.num_slices,
            global_extra=self.config.global_rename_depth,
        )
        self._now = 0
        self._fetch_ptr = 0
        #: fetch stops at this trace position (sampled runs bound each
        #: detailed window; exact runs leave it at the trace length)
        self._fetch_limit = len(trace)
        self._fetch_stall_until = 0
        self._blocking_branch: Optional[DynInst] = None
        self._next_dispatch_seq = 0
        #: decoded instructions in program order, waiting to dispatch
        self._decode_queue = deque()
        #: per-Slice instruction-buffer occupancy
        self._buf_count = [0] * self.vcore.num_slices
        #: global logical reg -> producing DynInst (until the reg is freed)
        self._producer_of: Dict[int, DynInst] = {}
        #: completion events batched per cycle: cycle -> [DynInst, ...]
        #: in schedule order.  Completions are always scheduled strictly
        #: in the future, so a per-cycle bucket pop replaces the heap
        #: (same ordering: cycle major, insertion order minor).
        self._completion_buckets: Dict[int, List[DynInst]] = {}
        #: stores dispatched but not yet address-resolved (ordered-LSQ
        #: ablation: loads wait for all older entries here)
        self._unresolved_stores: set = set()
        #: instructions retired by functional fast-forward (not timed)
        self.ff_retired = 0

        # Hot-loop hoists: every per-cycle stage reads these instead of
        # chasing config attribute chains.
        s_cfg = self.config.slice_config
        self._slices = self.vcore.slices
        self._hierarchies = [ctx.hierarchy for ctx in self._slices]
        self._fetch_width = s_cfg.fetch_width
        self._buffer_cap = s_cfg.instruction_buffer_size
        self._commit_budget = s_cfg.commit_width * self.vcore.num_slices
        self._mul_latency = s_cfg.mul_latency
        self._decode_latency = (self.config.frontend_depth
                                + self._rename_depth)
        self._issue_head_seq = -1
        self._mem_can_issue_bound = self._mem_can_issue

    def _warm_caches(self, warmup: Trace) -> None:
        """Replay a trace through the cache hierarchy without timing."""
        vcore = self.vcore
        for inst in warmup:
            sid = vcore.slice_for_fetch(inst.pc)
            ctx = vcore.slices[sid]
            ctx.l1i.access(inst.pc * 4)
            if inst.mem is not None:
                home = vcore.lsq.home_slice(inst.mem.address)
                home_ctx = vcore.slices[home]
                l1 = home_ctx.hierarchy.l1d
                result = l1.access(inst.mem.address,
                                   is_write=inst.is_store)
                if not result.hit:
                    vcore.l2.access(inst.mem.address,
                                    is_write=inst.is_store)
        for ctx in vcore.slices:
            ctx.l1i.reset_counters()
            ctx.hierarchy.l1d.reset_counters()
        for bank in vcore.l2.banks:
            bank.reset_counters()

    def _warm_data_caches(self, addresses: Sequence[int]) -> None:
        """Replay a read-address stream through L1D + L2 (no timing).

        Also brings the code footprint to steady state: looping code is
        L1I-resident after the first iteration, so the timed region's own
        PC stream is replayed through each Slice's I-cache and the L2.

        This loop streams millions of addresses for cache-hungry
        profiles, so the per-access lookups are hoisted out of it.
        """
        vcore = self.vcore
        num_slices = vcore.num_slices
        line_size = vcore.lsq.line_size  # home_slice(), inlined
        l1d_access = [ctx.hierarchy.l1d.access for ctx in vcore.slices]
        l1i_access = [ctx.l1i.access for ctx in vcore.slices]
        l2_access = vcore.l2.access
        fetch_width = self.config.slice_config.fetch_width
        for address in addresses:
            home = (address // line_size) % num_slices
            if not l1d_access[home](address).hit:
                l2_access(address)
        for inst in self.trace:
            pc = inst.pc
            sid = (pc // fetch_width) % num_slices
            if not l1i_access[sid](pc * 4).hit:
                l2_access(pc * 4)
        for ctx in vcore.slices:
            ctx.hierarchy.l1d.reset_counters()
            ctx.l1i.reset_counters()
        for bank in vcore.l2.banks:
            bank.reset_counters()

    # ==================================================================
    # public API
    # ==================================================================

    def run(self) -> SimResult:
        """Simulate until the rest of the trace commits.

        Instructions already functionally fast-forwarded count as
        retired, not committed, so the commit target excludes them.
        """
        self.run_to_commit(len(self.trace) - self.ff_retired)
        self._harvest_cache_stats()
        return SimResult(
            benchmark=self.trace.metadata.benchmark,
            num_slices=self.vcore.num_slices,
            l2_cache_kb=self.vcore.l2_cache_kb,
            stats=self.stats,
        )

    def run_to_commit(self, target: int) -> None:
        """Step the detailed model until ``target`` instructions committed.

        ``target`` counts detailed commits only (fast-forwarded
        instructions are excluded); the sampled simulator uses this to
        run one bounded detail window at a time.
        """
        max_cycles = self.config.max_cycles
        stats = self.stats
        step = self._step
        while stats.committed < target:
            if self._now >= max_cycles:
                raise SimulationTimeout(
                    f"{stats.committed}/{target} committed after "
                    f"{self._now} cycles"
                )
            step()

    # ==================================================================
    # functional fast-forward (sampled simulation)
    # ==================================================================

    def fast_forward(self, count: int) -> int:
        """Retire the next ``count`` instructions functionally.

        No scheduling machinery runs and no cycles elapse; caches (L1I,
        L1D, L2), the branch predictors/BTBs and the store state stay
        warm exactly as the paper's fast-forward phase would leave them.
        The pipeline must be drained (every fetched instruction
        committed) before skipping ahead.  Returns the number of
        instructions actually fast-forwarded (clipped at trace end).

        ``self.stats`` is untouched: fast-forwarded instructions are
        accounted separately in :attr:`ff_retired`, and the component
        counters they advance (cache hits/misses, predictor training)
        are excluded by the sampled estimator's per-window deltas.
        """
        self._require_drained()
        from repro.trace.materialize import (
            FLAG_BRANCH, FLAG_STORE, FLAG_TAKEN, materialize,
        )

        arrays = materialize(self.trace)
        start = self._fetch_ptr
        stop = min(start + count, len(self.trace))
        if stop <= start:
            return 0

        pcs = arrays.pcs
        mem_addrs = arrays.mem_addrs
        flags = arrays.flags
        targets = arrays.targets
        vcore = self.vcore
        slices = self._slices
        num_slices = vcore.num_slices
        fetch_width = self._fetch_width
        by_pc = self.config.fetch_assignment == "pc"
        l2_access = vcore.l2.access
        home_slice = vcore.lsq.home_slice
        l1i = [ctx.l1i for ctx in slices]
        l1d = [ctx.hierarchy.l1d for ctx in slices]
        branch_units = [ctx.branch_unit for ctx in slices]
        # Detailed fetch runs a next-line prefetch on every L1I access
        # (see _icache_fetch); skipping it here would hand the next
        # detailed window a prefetch-cold I-cache and bias its CPI up.
        prefetch_stride = 2 * 4 * num_slices

        for seq in range(start, stop):
            pc = pcs[seq]
            if by_pc:
                sid = (pc // fetch_width) % num_slices
            else:
                sid = (seq // fetch_width) % num_slices
            address = pc * 4
            cache = l1i[sid]
            if not cache.access(address).hit:
                l2_access(address)
            cache.prefetch(address + prefetch_stride)
            bits = flags[seq]
            if bits:
                if bits & FLAG_BRANCH:
                    taken = bool(bits & FLAG_TAKEN)
                    target = targets[seq]
                    unit = branch_units[sid]
                    unit.resolve(pc, taken,
                                 target if target >= 0 else None,
                                 unit.predict(pc))
                else:
                    address = mem_addrs[seq]
                    is_store = bool(bits & FLAG_STORE)
                    home = home_slice(address)
                    if not l1d[home].access(address,
                                            is_write=is_store).hit:
                        l2_access(address, is_write=is_store)
        retired = stop - start
        self._fetch_ptr = stop
        self._next_dispatch_seq = stop
        self.ff_retired += retired
        return retired

    def _require_drained(self) -> None:
        """Fast-forward is only legal between fully drained windows."""
        if (self._decode_queue or len(self.vcore.rob)
                or self._unresolved_stores
                or self._blocking_branch is not None):
            raise RuntimeError(
                "cannot fast-forward with instructions in flight; run "
                "the detailed window to completion first"
            )

    # ==================================================================
    # one cycle
    # ==================================================================

    def _step(self) -> None:
        now = self._now
        self._complete_stage(now)
        self._commit_stage(now)
        self._issue_stage(now)
        self._dispatch_stage(now)
        self._fetch_stage(now)
        for hierarchy in self._hierarchies:
            hierarchy.tick(now)
        self._now = now + 1
        self.stats.cycles = self._now

    # ------------------------------------------------------------------
    # complete
    # ------------------------------------------------------------------

    def _complete_stage(self, now: int) -> None:
        batch = self._completion_buckets.pop(now, None)
        if batch is None:
            return
        for dyn in batch:
            if dyn.squashed:
                continue
            self._on_complete(dyn, dyn.complete_cycle)

    def _slice_for(self, seq: int, pc: int) -> int:
        """Fetch-to-Slice assignment (ablation knob).

        "pc" is the paper's static interleave; "dynamic" rotates by
        dynamic position, scattering each static branch across Slices'
        predictors.
        """
        if self.config.fetch_assignment == "pc":
            return self.vcore.slice_for_fetch(pc)
        return (seq // self._fetch_width) % self.vcore.num_slices

    def _on_complete(self, dyn: DynInst, t: int) -> None:
        self._unresolved_stores.discard(dyn.seq)
        if dyn.op_class is OpClass.BRANCH:
            self._resolve_branch(dyn, t)
        # Wake local and remote consumers.
        for consumer, idx in dyn.waiters:
            if consumer.squashed:
                continue
            consumer.src_ready[idx] = self._operand_arrival(dyn, consumer, t)
        dyn.waiters.clear()

    def _resolve_branch(self, dyn: DynInst, t: int) -> None:
        ctx = self.vcore.slices[dyn.slice_id]
        inst = dyn.inst
        mispredicted = ctx.branch_unit.resolve(
            inst.pc, inst.taken, inst.target, dyn.predicted_taken
        )
        if mispredicted:
            dyn.mispredicted = True
            self.stats.branch_mispredicts += 1
            self._tracer.instant("branch_mispredict", ts=t, cat="core",
                                 tid=dyn.slice_id, args={"pc": inst.pc})
            if self._blocking_branch is dyn:
                self._blocking_branch = None
                self._fetch_stall_until = max(
                    self._fetch_stall_until,
                    t + self.config.mispredict_redirect,
                )

    def _operand_arrival(self, producer: DynInst, consumer: DynInst,
                         t: int) -> int:
        """Cycle the producer's value is usable by the consumer's Slice.

        Same-Slice consumers ride the bypass network (no cost).  Remote
        consumers sent an operand request at rename; the reply leaves once
        the value exists and the request has arrived (Section 3.2.2).  A
        value already cached in the consumer Slice's LRF costs nothing.
        """
        if producer.slice_id == consumer.slice_id:
            return t
        ctx = self.vcore.slices[consumer.slice_id]
        reg = producer.global_dst
        if reg is not None and reg in ctx.operand_arrival:
            return max(t, ctx.operand_arrival[reg])
        hop_lat = self.vcore.operand_latency(producer.slice_id,
                                             consumer.slice_id)
        request_arrives = consumer.dispatch_cycle + hop_lat
        arrival = max(t, request_arrives) + hop_lat
        self.stats.operand_requests += 1
        self.stats.remote_operand_hops += self.vcore.mesh.distance(
            producer.slice_id, consumer.slice_id
        )
        self._tracer.complete(
            "son.operand", ts=consumer.dispatch_cycle,
            dur=max(1, arrival - consumer.dispatch_cycle), cat="network",
            tid=producer.slice_id,
            args={"src": producer.slice_id, "dst": consumer.slice_id,
                  "reg": reg},
        )
        if reg is not None:
            ctx.operand_arrival[reg] = arrival
            ctx.lrf.allocate_remote(reg)
        return arrival

    # ------------------------------------------------------------------
    # commit
    # ------------------------------------------------------------------

    def _commit_stage(self, now: int) -> None:
        budget = self._commit_budget
        while budget > 0:
            head = self.vcore.rob.commit_eligible(now)
            if head is None:
                break
            if head.inst.is_store and not self._commit_store(head, now):
                break
            self._finalize_commit(head, now)
            budget -= 1

    def _commit_store(self, dyn: DynInst, now: int) -> bool:
        """Violation search plus store-buffer insertion; False = retry."""
        inst = dyn.inst
        assert inst.mem is not None
        home = self.vcore.lsq.home_slice(inst.mem.address)
        bank = self.vcore.lsq.banks[home]
        line = inst.mem.cache_line()

        # Entries still in the bank are live by construction (squashes
        # remove them eagerly); only loads that have actually executed by
        # now can have consumed stale data.
        violators = [
            v for v in bank.check_store_commit(dyn.seq, line)
            if v.resolved_cycle <= now
        ]
        if violators:
            oldest = min(v.seq for v in violators)
            self.stats.lsq_violations += len(violators)
            self._replay_from(oldest, now)

        ctx = self.vcore.slices[home]
        if not ctx.hierarchy.commit_store(inst.mem.address, now):
            return False  # store buffer full; retry next cycle
        bank.remove(dyn.seq)
        return True

    def _finalize_commit(self, dyn: DynInst, now: int) -> None:
        self.vcore.rob.pop_head()
        dyn.commit_cycle = now
        self.stats.committed += 1
        self._tracer.complete(
            dyn.op_class.name.lower(), ts=dyn.fetch_cycle,
            dur=max(1, now - dyn.fetch_cycle), cat="core",
            tid=dyn.slice_id, args={"seq": dyn.seq, "pc": dyn.inst.pc},
        )
        inst = dyn.inst
        if inst.is_load and inst.mem is not None:
            self.vcore.lsq.bank_for(inst.mem.address).remove(dyn.seq)
        if dyn.prior_mapping is not None:
            self._release_global(dyn.prior_mapping.global_reg)

    def _release_global(self, reg: int) -> None:
        """Free a global logical register everywhere."""
        self.vcore.global_rename.release(reg)
        self._producer_of.pop(reg, None)
        for ctx in self.vcore.slices:
            ctx.operand_arrival.pop(reg, None)
            ctx.lrf.release(reg)

    # ------------------------------------------------------------------
    # issue + execute
    # ------------------------------------------------------------------

    def _issue_stage(self, now: int) -> None:
        rob_head = self.vcore.rob.head()
        head_seq = rob_head.seq if rob_head else -1
        self._issue_head_seq = head_seq
        mem_predicate = self._mem_can_issue_bound
        for ctx in self._slices:
            alu, mem = ctx.issue_stage.issue_cycle_picks(
                now, mem_predicate=mem_predicate
            )
            if alu is not None:
                self._execute_alu(alu, now)
            if mem is not None:
                self._execute_mem(mem, now, force_lsq=(mem.seq == head_seq))

    def _mem_can_issue(self, dyn: DynInst) -> bool:
        inst = dyn.inst
        assert inst.mem is not None
        bank = self.vcore.lsq.bank_for(inst.mem.address)
        if bank.full and dyn.seq != self._issue_head_seq:
            self.stats.stalls.issue_lsq_full += 1
            return False
        if (self.config.ordered_lsq and inst.is_load
                and self._unresolved_stores
                and min(self._unresolved_stores) < dyn.seq):
            return False  # conservative: wait for older store addresses
        return True

    def _execute_alu(self, dyn: DynInst, now: int) -> None:
        dyn.issue_cycle = now
        latency = (self._mul_latency
                   if dyn.op_class is OpClass.MUL else 1)
        dyn.complete_cycle = now + latency
        self._schedule_completion(dyn)

    def _execute_mem(self, dyn: DynInst, now: int, force_lsq: bool) -> None:
        dyn.issue_cycle = now
        inst = dyn.inst
        assert inst.mem is not None
        address = inst.mem.address
        line = inst.mem.cache_line()
        home = self.vcore.lsq.home_slice(address)
        dyn.mem_home_slice = home
        sort_lat = self.vcore.sort_latency(dyn.slice_id, home)
        resolved = now + 1 + sort_lat  # address generation + sorting

        bank = self.vcore.lsq.banks[home]
        entry = bank.insert(dyn.seq, inst.is_store, line, resolved,
                            force=force_lsq)
        if entry is None:
            # Should not happen (predicate checked), but stay safe: retry.
            dyn.issue_cycle = NEVER
            ctx = self.vcore.slices[dyn.slice_id]
            ctx.issue_stage.insert(dyn)
            return

        if inst.is_store:
            dyn.complete_cycle = resolved
            self._schedule_completion(dyn)
            return

        forwarding = bank.find_forwarding_store(dyn.seq, line,
                                                before_cycle=resolved)
        if forwarding is not None:
            entry.forwarded_from = forwarding.seq
            dyn.forwarded_from = forwarding.seq
            self.stats.store_forwards += 1
            dyn.complete_cycle = resolved + 1
            self._tracer.complete(
                "mem.lsq_forward", ts=now,
                dur=max(1, dyn.complete_cycle - now), cat="cache",
                tid=home, args={"line": line, "seq": dyn.seq},
            )
        else:
            home_ctx = self.vcore.slices[home]
            outcome = home_ctx.hierarchy.access(address, is_write=False,
                                                now=resolved)
            return_lat = self.vcore.sort_latency(home, dyn.slice_id)
            dyn.complete_cycle = outcome.complete_cycle + return_lat
            self._tracer.complete(
                f"mem.{outcome.latency_class}", ts=now,
                dur=max(1, dyn.complete_cycle - now), cat="cache",
                tid=home, args={"line": line, "seq": dyn.seq},
            )
        self._schedule_completion(dyn)

    def _schedule_completion(self, dyn: DynInst) -> None:
        # Completions scheduled for the past or present are processed on
        # the *next* cycle's complete stage (the heap this replaces popped
        # entries with cycle <= now at the top of the following step), so
        # bucket them at max(complete_cycle, now + 1).
        cycle = dyn.complete_cycle
        now_next = self._now + 1
        if cycle < now_next:
            cycle = now_next
        bucket = self._completion_buckets.get(cycle)
        if bucket is None:
            self._completion_buckets[cycle] = [dyn]
        else:
            bucket.append(dyn)

    # ------------------------------------------------------------------
    # rename + dispatch
    # ------------------------------------------------------------------

    def _dispatch_stage(self, now: int) -> None:
        if not self._decode_queue:
            return
        quotas = [self._fetch_width] * self.vcore.num_slices
        while True:
            dyn = self._peek_dispatch()
            if dyn is None:
                return
            if dyn.rename_cycle > now:
                return
            sid = dyn.slice_id
            if quotas[sid] <= 0:
                return
            if not self._try_dispatch(dyn, now):
                return
            quotas[sid] -= 1
            self._next_dispatch_seq += 1

    def _peek_dispatch(self) -> Optional[DynInst]:
        """Next instruction in program order waiting in a fetch buffer."""
        if self._decode_queue:
            return self._decode_queue[0]
        return None

    def _try_dispatch(self, dyn: DynInst, now: int) -> bool:
        vcore = self.vcore
        ctx = vcore.slices[dyn.slice_id]
        stalls = self.stats.stalls
        if not vcore.rob.can_dispatch(dyn.slice_id):
            stalls.dispatch_rob_full += 1
            return False
        if ctx.issue_stage.window_for(dyn.op_class).full:
            stalls.dispatch_window_full += 1
            return False
        if vcore.global_rename.free_count == 0 and dyn.inst.writes_register:
            stalls.dispatch_freelist += 1
            return False

        inst = dyn.inst
        # --- source rename: find producers, register for wakeup ---
        src_ready: List[int] = [now + 1]  # dispatch-to-issue minimum
        pending: List[Tuple[DynInst, int]] = []
        for arch in inst.live_srcs():
            mapping = vcore.global_rename.lookup(arch)
            if mapping is None:
                continue  # architectural initial value, always ready
            producer = self._producer_of.get(mapping.global_reg)
            if producer is None or producer.is_committed:
                continue  # value long since architectural
            idx = len(src_ready)
            if producer.is_complete:
                dyn.dispatch_cycle = now  # needed by arrival computation
                src_ready.append(PENDING)  # fixed up right below
                pending.append((producer, idx))
            else:
                src_ready.append(PENDING)
                producer.waiters.append((dyn, idx))

        # --- destination rename ---
        if inst.writes_register:
            if not ctx.lrf.allocate_dst(-1):  # capacity probe
                stalls.dispatch_lrf_full += 1
                # undo waiter registrations made above
                self._unregister_waiters(dyn)
                return False
            ctx.lrf.release(-1)
            try:
                global_dst, prior = vcore.global_rename.allocate(
                    inst.dst, dyn.seq, dyn.slice_id
                )
            except RenameStallError:
                stalls.dispatch_freelist += 1
                self._unregister_waiters(dyn)
                return False
            dyn.global_dst = global_dst
            dyn.prior_mapping = prior
            ctx.lrf.allocate_dst(global_dst)
            self._producer_of[global_dst] = dyn

        dyn.dispatch_cycle = now
        dyn.src_ready = src_ready
        if inst.is_store:
            self._unresolved_stores.add(dyn.seq)
        for producer, idx in pending:
            src_ready[idx] = self._operand_arrival(
                producer, dyn, producer.complete_cycle
            )

        if not vcore.rob.dispatch(dyn):
            raise AssertionError("ROB capacity checked above")
        ctx.issue_stage.insert(dyn)
        self._decode_queue.popleft()
        self._buf_count[dyn.slice_id] -= 1
        return True

    def _unregister_waiters(self, dyn: DynInst) -> None:
        for producer in self._producer_of.values():
            producer.waiters = [
                (c, i) for c, i in producer.waiters if c is not dyn
            ]

    # ------------------------------------------------------------------
    # fetch
    # ------------------------------------------------------------------

    def _fetch_stage(self, now: int) -> None:
        if self._blocking_branch is not None:
            self.stats.stalls.fetch_branch_redirect += 1
            return
        if now < self._fetch_stall_until:
            self.stats.stalls.fetch_branch_redirect += 1
            return
        quotas = [self._fetch_width] * self.vcore.num_slices
        buffer_cap = self._buffer_cap
        buf_count = self._buf_count
        trace = self.trace
        while self._fetch_ptr < self._fetch_limit:
            seq = self._fetch_ptr
            inst = trace[seq]
            sid = self._slice_for(seq, inst.pc)
            if quotas[sid] <= 0:
                break
            ctx = self._slices[sid]
            if buf_count[sid] >= buffer_cap:
                self.stats.stalls.fetch_buffer_full += 1
                break
            if not self._icache_fetch(ctx, inst, now):
                self.stats.stalls.fetch_icache += 1
                break
            dyn = DynInst(inst=inst, slice_id=sid, fetch_cycle=now)
            dyn.rename_cycle = now + self._decode_latency
            self._decode_queue.append(dyn)
            self._buf_count[sid] += 1
            self.stats.fetched += 1
            quotas[sid] -= 1
            self._fetch_ptr += 1
            if inst.is_branch:
                self.stats.branches += 1
                predicted = ctx.branch_unit.predict(inst.pc)
                dyn.predicted_taken = predicted
                if predicted != inst.taken:
                    # Wrong path: stall fetch until the branch resolves.
                    self._blocking_branch = dyn
                    break

    def _icache_fetch(self, ctx, inst: Instruction, now: int) -> bool:
        """Access the Slice's L1I; on a miss, stall fetch until the fill.

        A next-line predictor runs ahead of fetch on every access
        (Section 3.5: "a next line predictor is used to prefetch the next
        instruction according to the number of Slices"): each Slice's
        consecutive fetch pairs are ``2 * num_slices`` instructions apart,
        so the prefetch stride follows the Slice count.
        """
        address = inst.pc * 4
        stride = 2 * 4 * self.vcore.num_slices
        self.stats.l1i_accesses += 1
        result = ctx.l1i.access(address)
        ctx.l1i.prefetch(address + stride)
        if result.hit:
            return True
        self.stats.l1i_misses += 1
        l2_result, l2_lat = self.vcore.l2.access(address)
        delay = ctx.l1i.hit_latency + l2_lat
        if not l2_result.hit:
            delay += self.config.cache_config.memory_delay
        self._fetch_stall_until = now + delay
        self._tracer.complete(
            "l1i_miss", ts=now, dur=delay, cat="cache", tid=ctx.slice_id,
            args={"pc": inst.pc, "l2_hit": l2_result.hit},
        )
        return False

    # ------------------------------------------------------------------
    # squash / replay (memory-order violation)
    # ------------------------------------------------------------------

    def _replay_from(self, victim_seq: int, now: int) -> None:
        """Squash ``victim_seq`` and everything younger; refetch."""
        vcore = self.vcore
        squashed = vcore.rob.squash_younger(victim_seq - 1)
        # Roll global rename back youngest-first so the RAT unwinds.
        for dyn in squashed:
            if dyn.global_dst is not None:
                vcore.global_rename.rollback(
                    dyn.inst.dst, dyn.global_dst, dyn.prior_mapping
                )
                self._producer_of.pop(dyn.global_dst, None)
                for ctx in vcore.slices:
                    ctx.operand_arrival.pop(dyn.global_dst, None)
                    ctx.lrf.release(dyn.global_dst)
        for ctx in vcore.slices:
            ctx.issue_stage.squash_younger(victim_seq - 1)
        while self._decode_queue and self._decode_queue[-1].seq >= victim_seq:
            victim = self._decode_queue.pop()
            victim.squashed = True
            self._buf_count[victim.slice_id] -= 1
        vcore.lsq.squash_younger(victim_seq - 1)
        self._unresolved_stores = {
            s for s in self._unresolved_stores if s < victim_seq
        }
        self.stats.squashed += len(squashed)
        self._tracer.instant(
            "squash_replay", ts=now, cat="core",
            args={"victim_seq": victim_seq, "squashed": len(squashed)},
        )
        if (self._blocking_branch is not None
                and self._blocking_branch.seq >= victim_seq):
            self._blocking_branch = None
        self._fetch_ptr = victim_seq
        self._next_dispatch_seq = victim_seq
        self._fetch_stall_until = max(
            self._fetch_stall_until, now + self.config.mispredict_redirect
        )

    # ------------------------------------------------------------------
    # final statistics
    # ------------------------------------------------------------------

    def _harvest_cache_stats(self) -> None:
        stats = self.stats
        for ctx in self.vcore.slices:
            stats.l1d_accesses += ctx.hierarchy.l1d.accesses
            stats.l1d_misses += ctx.hierarchy.l1d.misses
        stats.l2_accesses = self.vcore.l2.hits + self.vcore.l2.misses
        stats.l2_misses = self.vcore.l2.misses


def simulate(trace: Trace, num_slices: int = 1, l2_cache_kb: float = 128.0,
             config: Optional[SimConfig] = None,
             warmup_trace: Optional[Trace] = None,
             warmup_addresses: Optional[Sequence[int]] = None,
             timeout: Optional[int] = None,
             obs: Optional[Observability] = None,
             backend: Optional[str] = None) -> SimResult:
    """Convenience wrapper: simulate ``trace`` on one VCore configuration.

    Takes the same keywords as :class:`SharingSimulator` (``num_slices``,
    ``l2_cache_kb``, ``warmup_trace``, ``warmup_addresses``, ``timeout``);
    ``timeout`` caps the simulation at that many cycles.  ``obs`` attaches
    an :class:`~repro.obs.Observability` instance: its registry gets the
    per-component counters, and (when tracing) its tracer records the
    pipeline/cache/network event stream for Chrome trace export.

    ``backend`` overrides ``config.backend``: ``"python"`` runs this
    module's scalar reference, ``"batched"`` the bit-identical
    structure-of-arrays backend (:mod:`repro.core.batched`).
    """
    if backend is None:
        backend = config.backend if config is not None else "python"
    if backend == "batched":
        from repro.core.batched import simulate_batched

        return simulate_batched(
            trace, num_slices=num_slices, l2_cache_kb=l2_cache_kb,
            config=config, warmup_trace=warmup_trace,
            warmup_addresses=warmup_addresses, timeout=timeout, obs=obs)
    if backend != "python":
        raise ValueError(
            f"backend must be 'python' or 'batched', got {backend!r}")
    return SharingSimulator(trace, config=config, num_slices=num_slices,
                            l2_cache_kb=l2_cache_kb,
                            warmup_trace=warmup_trace,
                            warmup_addresses=warmup_addresses,
                            timeout=timeout, obs=obs).run()
