"""Unordered, address-banked load/store queues (paper Section 3.6).

The Sharing Architecture departs from clustered/Core Fusion LSQs: memory
operations are *sorted* to a home Slice by address (low-order interleaved
by cache line) after address generation, so each Slice's LSQ bank only
ever sees one address partition.  The bank is unordered with respect to
age; an explicit age tag maintains load/store order.  Committing stores
search the bank for younger issued loads to the same address and report a
violation when they find one (Figure 9).  Loads may forward from older
resolved stores in the same bank.
"""

from __future__ import annotations

from typing import Dict, List, Optional


class LSQEntry:
    """One memory operation resident in a bank.

    A ``__slots__`` class: banks hold one entry per in-flight memory
    operation and the forwarding/violation scans walk them every cycle,
    so the per-instance ``__dict__`` is worth eliding.
    """

    __slots__ = ("seq", "is_store", "line", "resolved_cycle",
                 "forwarded_from")

    def __init__(self, seq: int, is_store: bool, line: int,
                 resolved_cycle: int,
                 forwarded_from: Optional[int] = None):
        self.seq = seq  # age tag (program order)
        self.is_store = is_store
        self.line = line
        self.resolved_cycle = resolved_cycle
        self.forwarded_from = forwarded_from

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "store" if self.is_store else "load"
        return (f"LSQEntry(seq={self.seq}, {kind}, line={self.line}, "
                f"resolved={self.resolved_cycle})")


class LSQBank:
    """One Slice's unordered LSQ bank."""

    def __init__(self, capacity: int = 32):
        if capacity < 1:
            raise ValueError("LSQ bank needs capacity >= 1")
        self.capacity = capacity
        self._entries: Dict[int, LSQEntry] = {}
        self.inserted = 0
        self.full_stalls = 0
        self.violations = 0
        self.forwards = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def insert(self, seq: int, is_store: bool, line: int,
               resolved_cycle: int, force: bool = False) -> Optional[LSQEntry]:
        """Allocate at address resolution (late binding); None when full.

        ``force`` admits the entry over capacity; the simulator uses it
        for the ROB-head memory operation so a bank saturated with younger
        entries can never deadlock commit.
        """
        if self.full and not force:
            self.full_stalls += 1
            return None
        entry = LSQEntry(seq=seq, is_store=is_store, line=line,
                         resolved_cycle=resolved_cycle)
        self._entries[seq] = entry
        self.inserted += 1
        return entry

    def attach_obs(self, scope) -> None:
        """Register gauges over this bank's counters and occupancy."""
        scope.gauge("inserted", lambda: self.inserted)
        scope.gauge("full_stalls", lambda: self.full_stalls)
        scope.gauge("violations", lambda: self.violations)
        scope.gauge("forwards", lambda: self.forwards)
        scope.gauge("occupancy", self.occupancy)
        scope.info("capacity", self.capacity)

    def find_forwarding_store(self, load_seq: int, line: int,
                              before_cycle: Optional[int] = None
                              ) -> Optional[LSQEntry]:
        """Youngest older resolved store to the same line, if any.

        With ``before_cycle`` set, only stores whose address resolved by
        that cycle are candidates - a store resolving later cannot forward
        to this load and will instead flag a violation at its commit.
        """
        best: Optional[LSQEntry] = None
        for entry in self._entries.values():
            if (entry.is_store and entry.seq < load_seq
                    and entry.line == line
                    and (before_cycle is None
                         or entry.resolved_cycle <= before_cycle)
                    and (best is None or entry.seq > best.seq)):
                best = entry
        if best is not None:
            self.forwards += 1
        return best

    def check_store_commit(self, store_seq: int, line: int) -> List[LSQEntry]:
        """Violation check on store commit (paper Figure 9).

        Returns the younger issued loads to the same line that consumed a
        value *older* than this store - loads that forwarded from this
        store, or from an even younger store, saw correct data.
        """
        violators = [
            entry
            for entry in self._entries.values()
            if (not entry.is_store
                and entry.seq > store_seq
                and entry.line == line
                and (entry.forwarded_from is None
                     or entry.forwarded_from < store_seq))
        ]
        self.violations += len(violators)
        return violators

    def remove(self, seq: int) -> None:
        self._entries.pop(seq, None)

    def squash_younger(self, seq: int) -> int:
        """Drop all entries younger than ``seq`` (violation replay)."""
        victims = [s for s in self._entries if s > seq]
        for s in victims:
            del self._entries[s]
        return len(victims)

    def occupancy(self) -> int:
        return len(self._entries)


class DistributedLSQ:
    """The VCore's LSQ: one bank per Slice, address-interleaved.

    ``home_slice(address)`` implements the sorting hash of Section 3.5:
    low-order interleave by cache line, so accesses to the same line are
    always sorted to the same Slice and no intra-VCore coherence is
    needed.
    """

    def __init__(self, num_slices: int, bank_capacity: int = 32,
                 line_size: int = 64):
        if num_slices < 1:
            raise ValueError("need at least one Slice")
        self.num_slices = num_slices
        self.line_size = line_size
        self.banks = [LSQBank(bank_capacity) for _ in range(num_slices)]

    def home_slice(self, address: int) -> int:
        return (address // self.line_size) % self.num_slices

    def bank_for(self, address: int) -> LSQBank:
        return self.banks[self.home_slice(address)]

    def attach_obs(self, scope) -> None:
        """Attach aggregate gauges plus every bank under ``bank<i>``."""
        scope.gauge("violations", lambda: self.total_violations)
        scope.gauge("forwards", lambda: self.total_forwards)
        scope.gauge("full_stalls", lambda: self.total_full_stalls)
        for sid, bank in enumerate(self.banks):
            bank.attach_obs(scope.scope(f"bank{sid}"))

    @property
    def total_violations(self) -> int:
        return sum(b.violations for b in self.banks)

    @property
    def total_forwards(self) -> int:
        return sum(b.forwards for b in self.banks)

    @property
    def total_full_stalls(self) -> int:
        return sum(b.full_stalls for b in self.banks)

    def aggregate_capacity(self) -> int:
        """Total LSQ capacity grows with Slice count (Section 3.6)."""
        return sum(b.capacity for b in self.banks)

    def squash_younger(self, seq: int) -> int:
        return sum(b.squash_younger(seq) for b in self.banks)
