"""Two-stage register renaming (paper Section 3.2, Figure 5).

Stage one (*global rename*, Section 3.2.1) maps architectural registers
onto a large global logical register space shared by all Slices of a
VCore, eliminating false dependences.  The free list is distributed across
Slices; destination renames are corrected through a master-Slice broadcast,
which costs extra pipeline depth in multi-Slice VCores.

Stage two (*local rename*, Section 3.2.2) maps global logical registers
into each Slice's Local Register File (LRF).  Remote source operands are
fetched with request/reply messages over the Scalar Operand Network and
*cached* in the LRF: later reads of the same global register from the same
Slice hit locally and send no message.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple


class RenameStallError(RuntimeError):
    """Raised when rename cannot proceed (resource exhausted)."""


@dataclass
class GlobalMapping:
    """One live architectural -> global-logical mapping."""

    arch_reg: int
    global_reg: int
    producer_seq: int
    producer_slice: int


class GlobalRenameState:
    """Global RAT + distributed free list + scoreboard of producers.

    The scoreboard "tracks which Slice contains the most up-to-date value
    for a given register" (Section 3.2.1); it is what local rename
    consults to decide whether an operand request message is needed.
    """

    def __init__(self, num_global: int = 128, num_arch: int = 32):
        if num_global < num_arch:
            raise ValueError("global space must cover architectural space")
        self.num_global = num_global
        self.num_arch = num_arch
        self._free: List[int] = list(range(num_global - 1, -1, -1))
        self._rat: Dict[int, GlobalMapping] = {}
        # global reg -> slice currently holding / producing the value
        self._scoreboard: Dict[int, int] = {}
        self.allocations = 0
        self.free_list_stalls = 0

    @property
    def free_count(self) -> int:
        return len(self._free)

    def attach_obs(self, scope) -> None:
        """Register gauges over rename allocation/stall counters."""
        scope.gauge("allocations", lambda: self.allocations)
        scope.gauge("free_list_stalls", lambda: self.free_list_stalls)
        scope.gauge("free_count", lambda: len(self._free))
        scope.gauge("live_mappings", lambda: len(self._rat))
        scope.info("num_global", self.num_global)

    def lookup(self, arch_reg: int) -> Optional[GlobalMapping]:
        """Current mapping for an architectural source register."""
        return self._rat.get(arch_reg)

    def producer_slice(self, global_reg: int) -> Optional[int]:
        return self._scoreboard.get(global_reg)

    def allocate(self, arch_reg: int, producer_seq: int,
                 producer_slice: int) -> Tuple[int, Optional[GlobalMapping]]:
        """Rename a destination; returns ``(new_global, prior_mapping)``.

        ``prior_mapping.global_reg`` is the register to free once the new
        mapping commits; the full mapping object is kept so a squash can
        roll the RAT back.  Raises :class:`RenameStallError` when the
        distributed free list is empty.
        """
        if not self._free:
            self.free_list_stalls += 1
            raise RenameStallError("global logical free list empty")
        new_global = self._free.pop()
        prior = self._rat.get(arch_reg)
        self._rat[arch_reg] = GlobalMapping(
            arch_reg=arch_reg,
            global_reg=new_global,
            producer_seq=producer_seq,
            producer_slice=producer_slice,
        )
        self._scoreboard[new_global] = producer_slice
        self.allocations += 1
        return new_global, prior

    def release(self, global_reg: int) -> None:
        """Return a global register to the free list (at commit)."""
        self._scoreboard.pop(global_reg, None)
        self._free.append(global_reg)

    def rollback(self, arch_reg: int, global_reg: int,
                 prior: Optional[GlobalMapping]) -> None:
        """Undo an allocation (squash before commit)."""
        if prior is not None:
            self._rat[arch_reg] = prior
        else:
            self._rat.pop(arch_reg, None)
        self.release(global_reg)


class LocalRegisterFile:
    """One Slice's LRF: destination allocations plus remote-operand cache.

    Capacity pressure from both uses is what bounds a Slice's in-flight
    window (paper Table 2: 64 local registers per Slice).
    """

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise ValueError("LRF needs at least one register")
        self.capacity = capacity
        #: global regs with an LRF entry on this Slice (dst or cached remote)
        self._resident: Set[int] = set()
        #: subset of ``_resident`` that are cached remote operands
        self._cached_remote: Set[int] = set()
        self.full_stalls = 0

    def __len__(self) -> int:
        return len(self._resident)

    @property
    def free_count(self) -> int:
        return self.capacity - len(self._resident)

    def attach_obs(self, scope) -> None:
        """Register gauges over LRF pressure counters."""
        scope.gauge("full_stalls", lambda: self.full_stalls)
        scope.gauge("occupancy", lambda: len(self._resident))
        scope.gauge("cached_remote", lambda: len(self._cached_remote))
        scope.info("capacity", self.capacity)

    def holds(self, global_reg: int) -> bool:
        return global_reg in self._resident

    def _evict_cached_remote(self) -> bool:
        """Drop one cached remote operand to free a register."""
        if not self._cached_remote:
            return False
        victim = next(iter(self._cached_remote))
        self._cached_remote.discard(victim)
        self._resident.discard(victim)
        return True

    def allocate_dst(self, global_reg: int) -> bool:
        """Allocate an entry for a locally produced value."""
        if global_reg in self._resident:
            return True
        if not self.free_count and not self._evict_cached_remote():
            self.full_stalls += 1
            return False
        self._resident.add(global_reg)
        return True

    def allocate_remote(self, global_reg: int) -> bool:
        """Allocate an entry for an incoming remote operand (Section
        3.2.2: the destination is allocated and marked pending until the
        operand reply arrives)."""
        if global_reg in self._resident:
            return True
        # Evict an older cached remote operand to make room; if none
        # exist the rename stage must stall.
        if not self.free_count and not self._evict_cached_remote():
            self.full_stalls += 1
            return False
        self._resident.add(global_reg)
        self._cached_remote.add(global_reg)
        return True

    def release(self, global_reg: int) -> None:
        self._resident.discard(global_reg)
        self._cached_remote.discard(global_reg)

    def flush_remote_cache(self) -> int:
        """Drop all cached remote operands (VCore reconfiguration)."""
        n = len(self._cached_remote)
        self._resident -= self._cached_remote
        self._cached_remote.clear()
        return n


def rename_pipeline_depth(num_slices: int, local_depth: int = 1,
                          global_extra: int = 2) -> int:
    """Rename latency in cycles for a VCore of ``num_slices`` Slices.

    Single-Slice VCores skip the master-broadcast correction entirely;
    multi-Slice VCores pay the send-to-master / broadcast / correct steps
    of Figure 6b.
    """
    if num_slices < 1:
        raise ValueError("a VCore has at least one Slice")
    if num_slices == 1:
        return local_depth
    return local_depth + global_extra
