"""Per-Slice issue windows (paper Section 3.3).

Each Slice has a separate issue window for ALU instructions and for
loads/stores.  Instructions leave the window, possibly out of order, when
their operands will be available the next cycle; remote operands use the
one-cycle-early wakeup signal so the head start hides one network cycle.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.dyninst import DynInst
from repro.isa import OpClass


class IssueWindow:
    """One Slice's issue window for one functional-unit class."""

    def __init__(self, capacity: int, name: str = "window"):
        if capacity < 1:
            raise ValueError("issue window needs capacity >= 1")
        self.capacity = capacity
        self.name = name
        self._slots: List[DynInst] = []
        self.inserted = 0
        self.full_stalls = 0

    def __len__(self) -> int:
        return len(self._slots)

    @property
    def full(self) -> bool:
        return len(self._slots) >= self.capacity

    def insert(self, dyn: DynInst) -> bool:
        if self.full:
            self.full_stalls += 1
            return False
        self._slots.append(dyn)
        self.inserted += 1
        return True

    def pick_ready(self, now: int, predicate=None) -> Optional[DynInst]:
        """Select the oldest instruction whose operands are ready.

        The one-cycle head start of the remote wakeup (Section 3.3) is
        folded into each operand's recorded ready cycle by the simulator,
        so selection here is a plain oldest-first ready scan.  An optional
        ``predicate`` adds structural conditions (e.g. home LSQ bank has
        space for a memory operation).
        """
        best: Optional[DynInst] = None
        for dyn in self._slots:
            if dyn.ready_cycle() > now:
                continue
            if predicate is not None and not predicate(dyn):
                continue
            if best is None or dyn.seq < best.seq:
                best = dyn
        if best is not None:
            self._slots.remove(best)
        return best

    def remove_squashed(self) -> int:
        before = len(self._slots)
        self._slots = [d for d in self._slots if not d.squashed]
        return before - len(self._slots)

    def squash_younger(self, seq: int) -> int:
        before = len(self._slots)
        self._slots = [d for d in self._slots if d.seq <= seq]
        return before - len(self._slots)


class SliceIssueStage:
    """Both issue windows of one Slice plus its functional-unit ports."""

    def __init__(self, slice_id: int, window_size: int = 32):
        # The paper gives each Slice "a separate issue window for ALU
        # instructions and loads/stores" (Section 3.3); the Table 2 sizes
        # are per window.
        self.slice_id = slice_id
        self.alu_window = IssueWindow(window_size, name=f"s{slice_id}.alu")
        self.mem_window = IssueWindow(window_size, name=f"s{slice_id}.mem")
        self.alu_issued = 0
        self.mem_issued = 0

    def window_for(self, op_class: OpClass) -> IssueWindow:
        if op_class.is_memory:
            return self.mem_window
        return self.alu_window

    def insert(self, dyn: DynInst) -> bool:
        return self.window_for(dyn.op_class).insert(dyn)

    def issue_cycle_picks(self, now: int, mem_predicate=None):
        """Pick at most one ALU-class and one memory-class instruction."""
        alu = self.alu_window.pick_ready(now)
        mem = self.mem_window.pick_ready(now, predicate=mem_predicate)
        if alu is not None:
            self.alu_issued += 1
        if mem is not None:
            self.mem_issued += 1
        return alu, mem

    def squash_younger(self, seq: int) -> int:
        return (self.alu_window.squash_younger(seq)
                + self.mem_window.squash_younger(seq))

    def occupancy(self) -> int:
        return len(self.alu_window) + len(self.mem_window)
