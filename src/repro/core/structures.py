"""Replicated vs partitioned structure policies (paper Table 1).

When Slices are grouped into a VCore, each intra-core structure is either
*replicated* (each Slice keeps a full private copy, sized for the largest
configuration) or *partitioned* (the logical structure is spread across
Slices so capacity scales with Slice count).  Section 3 motivates each
choice by the structure's tolerance to access latency.
"""

from __future__ import annotations

import enum
from typing import Dict, List


class StructurePolicy(enum.Enum):
    REPLICATED = "replicated"
    PARTITIONED = "partitioned"


#: Paper Table 1.  The branch predictor, BTB, scoreboard and global RAT
#: are replicated per Slice; the issue window, load queue, store queue,
#: ROB, local RAT and physical register file are partitioned so their
#: aggregate capacity grows with the number of Slices.
STRUCTURE_POLICIES: Dict[str, StructurePolicy] = {
    "branch_predictor": StructurePolicy.REPLICATED,
    "btb": StructurePolicy.REPLICATED,
    "scoreboard": StructurePolicy.REPLICATED,
    "global_rat": StructurePolicy.REPLICATED,
    "issue_window": StructurePolicy.PARTITIONED,
    "load_queue": StructurePolicy.PARTITIONED,
    "store_queue": StructurePolicy.PARTITIONED,
    "rob": StructurePolicy.PARTITIONED,
    "local_rat": StructurePolicy.PARTITIONED,
    "physical_rf": StructurePolicy.PARTITIONED,
}


def replicated_structures() -> List[str]:
    return sorted(
        name
        for name, policy in STRUCTURE_POLICIES.items()
        if policy is StructurePolicy.REPLICATED
    )


def partitioned_structures() -> List[str]:
    return sorted(
        name
        for name, policy in STRUCTURE_POLICIES.items()
        if policy is StructurePolicy.PARTITIONED
    )


def effective_capacity(structure: str, per_slice_capacity: int,
                       num_slices: int) -> int:
    """Logical capacity of a structure in an ``num_slices``-Slice VCore.

    Partitioned structures aggregate across Slices; replicated structures
    do not grow (each Slice holds a copy sized for the maximum VCore).
    """
    if num_slices < 1:
        raise ValueError("a VCore has at least one Slice")
    policy = STRUCTURE_POLICIES.get(structure)
    if policy is None:
        known = ", ".join(sorted(STRUCTURE_POLICIES))
        raise KeyError(f"unknown structure {structure!r}; known: {known}")
    if policy is StructurePolicy.PARTITIONED:
        return per_slice_capacity * num_slices
    return per_slice_capacity
