"""Batched structure-of-arrays simulator backend.

One :class:`BatchedSimulator` advances *many VCore configurations in
lockstep* over shared, materialized trace columns: the Fig 12/13 grid
becomes a leading ``lane`` axis, with one numpy tensor per pipeline
structure (ROB/LSQ occupancy in :class:`BatchedROB`/:class:`BatchedLSQ`,
branch-predictor counter and BTB tables) and flat per-lane columns for
the per-instruction pipeline state that the scalar simulator keeps in
``DynInst`` objects.

The scalar :class:`~repro.core.simulator.SharingSimulator` is the
untouched equivalence reference (the ``backend="python"`` role): every
statistic in :class:`~repro.core.stats.SimStats` is reproduced
*bit-for-bit* per lane, enforced by ``tests/core/test_batched_equivalence``
exactly as ``economics/tensor.py`` is pinned to its scalar path.

Where the batched speed comes from
----------------------------------

* **Shared workload** - every lane of a trace walks one set of
  precomputed columns (PCs, packed flags, live sources, home/fetch
  Slice maps) instead of chasing ``Instruction`` property chains.
* **Shared warmup** - cache-warm state is computed once per
  (trace, num_slices) group and copied into each lane, instead of
  replaying millions of warmup addresses per configuration.
* **De-objectified pipeline** - per-instruction state lives in flat
  per-lane columns indexed by sequence number (epoch counters replace
  object identity across squash/refetch), and the per-cycle
  ``hierarchy.tick`` is applied lazily: MSHR retirement and store-buffer
  drains are caught up only when a Slice's memory system is next
  observed, which is exact because both are pure functions of the cycle
  number.

Divergence handling
-------------------

Lanes are fully independent (one stalling lane never blocks another):
each keeps its own ``now`` and the driver advances lanes in bounded
chunks, so "lockstep" is a scheduling policy rather than a correctness
constraint.  Two structures are deliberately kept as exact Python ports
rather than tensors because their *iteration order is observable* in the
scalar reference: the LRF remote-operand cache (``next(iter(set))``
eviction) and the cache LRU lists (dict/list ordering).  Reproducing the
same operation sequence on the same container types reproduces the same
victims, which is what bit-identity requires.

Restrictions: ``repro.obs`` instrumentation is not supported on the
batched backend (attach ``obs`` to the scalar reference instead); lanes
always use the default ring-packed L2 bank distances, exactly like every
``simulate()`` call (which rebuilds the ``VCoreConfig`` from
``(num_slices, l2_cache_kb)``).
"""

from __future__ import annotations

from bisect import insort
from collections import deque
from dataclasses import replace
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cache.l2 import (
    L2_ASSOC,
    L2_BANK_BYTES,
    L2_BASE_LATENCY,
    L2_CYCLES_PER_DISTANCE,
    L2_LINE_BYTES,
    default_bank_distances,
)
from repro.core.config import SimConfig, VCoreConfig
from repro.core.rename import rename_pipeline_depth
from repro.core.simulator import SimResult, SimulationTimeout
from repro.core.stats import SimStats, StallBreakdown
from repro.trace.records import Trace

#: Packed per-instruction flag bits (superset of trace.materialize's).
F_BRANCH = 1
F_TAKEN = 2
F_LOAD = 4
F_STORE = 8
F_MEM = F_LOAD | F_STORE
F_MUL = 16
F_WRITES = 32

#: LSQ/MSHR/store-buffer line size (fixed at 64 in the scalar model).
_LSQ_LINE = 64
#: L2 bank geometry (fixed; see repro.cache.l2).
_L2_SETS = (L2_BANK_BYTES // L2_LINE_BYTES) // L2_ASSOC


# ======================================================================
# shared trace columns
# ======================================================================


class _TraceColumns:
    """Flat per-instruction columns shared by every lane of one trace.

    Extends :class:`~repro.trace.materialize.TraceArrays` with the
    rename-visible fields (live sources, destination register) and
    memoized Slice-assignment maps, so the batched pipeline never touches
    ``Instruction`` objects.  Built once and cached on the trace.
    """

    __slots__ = ("length", "pcs", "pc4", "addrs", "lines", "flags",
                 "targets", "srcs", "dst", "max_arch",
                 "_sid_cache", "_home_cache")

    def __init__(self, trace: Trace) -> None:
        n = len(trace)
        self.length = n
        pcs: List[int] = [0] * n
        pc4: List[int] = [0] * n
        addrs: List[int] = [-1] * n
        lines: List[int] = [-1] * n
        flags: List[int] = [0] * n
        targets: List[int] = [-1] * n
        srcs: List[Tuple[int, ...]] = [()] * n
        dst: List[int] = [-1] * n
        from repro.isa import OpClass

        for i, inst in enumerate(trace):
            pc = inst.pc
            pcs[i] = pc
            pc4[i] = pc * 4
            bits = 0
            oc = inst.op_class
            if inst.mem is not None:
                addr = inst.mem.address
                addrs[i] = addr
                lines[i] = addr // _LSQ_LINE
                bits |= F_STORE if oc is OpClass.STORE else F_LOAD
            elif oc is OpClass.BRANCH:
                bits |= F_BRANCH
                if inst.taken:
                    bits |= F_TAKEN
            elif oc is OpClass.MUL:
                bits |= F_MUL
            if inst.writes_register:
                bits |= F_WRITES
                dst[i] = inst.dst
            flags[i] = bits
            if inst.target is not None:
                targets[i] = inst.target
            live = inst.live_srcs()
            if live:
                srcs[i] = live
        self.pcs = pcs
        self.pc4 = pc4
        self.addrs = addrs
        self.lines = lines
        self.flags = flags
        self.targets = targets
        self.srcs = srcs
        self.dst = dst
        # Architectural register space bound (RAT array sizing).
        ma = 0
        for i in range(n):
            if dst[i] > ma:
                ma = dst[i]
            for s in srcs[i]:
                if s > ma:
                    ma = s
        self.max_arch = ma
        self._sid_cache: Dict[Tuple[int, int, bool], List[int]] = {}
        self._home_cache: Dict[int, List[int]] = {}

    def sids(self, num_slices: int, fetch_width: int,
             by_pc: bool) -> List[int]:
        """Fetch-Slice of each instruction under one assignment policy."""
        key = (num_slices, fetch_width, by_pc)
        col = self._sid_cache.get(key)
        if col is None:
            if by_pc:
                col = [(pc // fetch_width) % num_slices for pc in self.pcs]
            else:
                col = [(i // fetch_width) % num_slices
                       for i in range(self.length)]
            self._sid_cache[key] = col
        return col

    def homes(self, num_slices: int) -> List[int]:
        """Home (LSQ/L1D) Slice of each memory op; -1 for non-memory."""
        col = self._home_cache.get(num_slices)
        if col is None:
            col = [line % num_slices if line >= 0 else -1
                   for line in self.lines]
            self._home_cache[num_slices] = col
        return col


def trace_columns(trace: Trace) -> _TraceColumns:
    """The trace's batched columns, built once and cached on it."""
    cols = getattr(trace, "_soa_columns", None)
    if cols is None or cols.length != len(trace):
        cols = _TraceColumns(trace)
        trace._soa_columns = cols  # type: ignore[attr-defined]
    return cols


# ======================================================================
# SoA pipeline structures (property-tested against rob.py / lsq.py)
# ======================================================================


class BatchedROB:
    """Distributed ROB over a lane axis: one occupancy tensor + one
    program-ordered seq window per lane.

    Mirrors :class:`~repro.core.rob.DistributedROB` exactly: dispatch
    admission is per-(lane, slice) occupancy against ``per_slice_capacity``,
    commit pops the per-lane head in program order, and squash walks the
    tail youngest-first.
    """

    def __init__(self, num_lanes: int, max_slices: int,
                 per_slice_capacity: int) -> None:
        self.per_slice_capacity = per_slice_capacity
        #: occupancy[lane][slice] - instructions in flight per Slice.
        #: Plain nested lists on the hot path; ``occupancy_tensor()``
        #: exports the (lane, slice) numpy view.
        self.occupancy = [[0] * max_slices for _ in range(num_lanes)]
        #: per-lane in-flight window, program (seq) order.
        self.windows: List[deque] = [deque() for _ in range(num_lanes)]

    def occupancy_tensor(self) -> np.ndarray:
        return np.asarray(self.occupancy, dtype=np.int64)

    def can_dispatch(self, lane: int, slice_id: int) -> bool:
        return self.occupancy[lane][slice_id] < self.per_slice_capacity

    def dispatch(self, lane: int, slice_id: int, seq: int) -> None:
        window = self.windows[lane]
        if window and window[-1] >= seq:
            raise ValueError("ROB dispatch out of program order")
        window.append(seq)
        self.occupancy[lane][slice_id] += 1

    def head(self, lane: int) -> int:
        window = self.windows[lane]
        return window[0] if window else -1

    def pop_head(self, lane: int, slice_id: int) -> int:
        self.occupancy[lane][slice_id] -= 1
        return self.windows[lane].popleft()

    def squash_younger(self, lane: int, seq: int,
                       slice_of: Sequence[int]) -> List[int]:
        """Pop every entry younger than ``seq``; youngest-first list."""
        window = self.windows[lane]
        occupancy = self.occupancy[lane]
        squashed: List[int] = []
        while window and window[-1] > seq:
            victim = window.pop()
            occupancy[slice_of[victim]] -= 1
            squashed.append(victim)
        return squashed

    def __len__(self) -> int:  # total in flight, all lanes
        return sum(map(sum, self.occupancy))


class BatchedLSQ:
    """Address-banked LSQ over a lane axis: occupancy tensor + per-bank
    entry maps ``seq -> [is_store, line, resolved_cycle, forwarded_from]``
    (``forwarded_from`` is -1 when unset, standing in for the scalar
    ``None``).

    Mirrors :class:`~repro.core.lsq.LSQBank` exactly, including the
    ``force`` over-capacity admission, the max-seq forwarding search and
    the store-commit violation filter.
    """

    def __init__(self, num_lanes: int, slice_counts: Sequence[int],
                 bank_capacity: int) -> None:
        self.bank_capacity = bank_capacity
        max_banks = max(slice_counts)
        self.occupancy = [[0] * max_banks for _ in range(num_lanes)]
        self.banks: List[List[Dict[int, List[int]]]] = [
            [{} for _ in range(count)] for count in slice_counts
        ]

    def occupancy_tensor(self) -> np.ndarray:
        return np.asarray(self.occupancy, dtype=np.int64)

    def full(self, lane: int, bank: int) -> bool:
        return len(self.banks[lane][bank]) >= self.bank_capacity

    def insert(self, lane: int, bank: int, seq: int, is_store: bool,
               line: int, resolved_cycle: int,
               force: bool = False) -> bool:
        entries = self.banks[lane][bank]
        if len(entries) >= self.bank_capacity and not force:
            return False
        entries[seq] = [is_store, line, resolved_cycle, -1]
        self.occupancy[lane][bank] += 1
        return True

    def find_forwarding_store(self, lane: int, bank: int, load_seq: int,
                              line: int, before_cycle: int) -> int:
        """Youngest older same-line store resolved in time, else -1."""
        best = -1
        for seq, entry in self.banks[lane][bank].items():
            if (entry[0] and seq < load_seq and entry[1] == line
                    and entry[2] <= before_cycle and seq > best):
                best = seq
        return best

    def check_store_commit(self, lane: int, bank: int, store_seq: int,
                           line: int) -> List[int]:
        """Younger same-line loads that did not forward from this store."""
        return [seq for seq, entry in self.banks[lane][bank].items()
                if not entry[0] and seq > store_seq and entry[1] == line
                and entry[3] < store_seq]

    def remove(self, lane: int, bank: int, seq: int) -> None:
        if self.banks[lane][bank].pop(seq, None) is not None:
            self.occupancy[lane][bank] -= 1

    def squash_younger(self, lane: int, seq: int) -> None:
        for bank, entries in enumerate(self.banks[lane]):
            victims = [s for s in entries if s > seq]
            for s in victims:
                del entries[s]
            self.occupancy[lane][bank] -= len(victims)


class _LRF:
    """Exact port of :class:`~repro.core.rename.LocalRegisterFile`.

    Kept as real Python sets on purpose: the scalar eviction picks
    ``next(iter(set))``, so the *container's* iteration order is part of
    the observable behaviour.  Identical operation sequences on identical
    set types reproduce identical victims.
    """

    __slots__ = ("capacity", "resident", "cached_remote")

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.resident: set = set()
        self.cached_remote: set = set()

    def _evict_cached_remote(self) -> bool:
        cached = self.cached_remote
        if not cached:
            return False
        victim = next(iter(cached))
        cached.discard(victim)
        self.resident.discard(victim)
        return True

    def allocate_dst(self, global_reg: int) -> bool:
        resident = self.resident
        if global_reg in resident:
            return True
        if (len(resident) >= self.capacity
                and not self._evict_cached_remote()):
            return False
        resident.add(global_reg)
        return True

    def allocate_remote(self, global_reg: int) -> bool:
        resident = self.resident
        if global_reg in resident:
            return True
        if (len(resident) >= self.capacity
                and not self._evict_cached_remote()):
            return False
        resident.add(global_reg)
        self.cached_remote.add(global_reg)
        return True

    def release(self, global_reg: int) -> None:
        self.resident.discard(global_reg)
        self.cached_remote.discard(global_reg)


def _cache_touch(sets: Dict[int, List[int]], num_sets: int, assoc: int,
                 line: int) -> bool:
    """One set-associative LRU access/refill; True on hit.

    Same state evolution as ``repro.cache.setassoc`` (per-set LRU->MRU
    order, evict LRU on full miss), with the set map grown lazily.
    """
    idx = line % num_sets
    ways = sets.get(idx)
    if ways is None:
        sets[idx] = [line]
        return False
    if line in ways:
        if ways[-1] != line:
            ways.remove(line)
            ways.append(line)
        return True
    if len(ways) >= assoc:
        del ways[0]
    ways.append(line)
    return False


# ======================================================================
# one lane = one (trace, num_slices, l2_cache_kb) configuration
# ======================================================================


class _Lane:
    """All per-configuration state, flat and column-oriented."""

    __slots__ = (
        "index", "trace_index", "cols", "num_slices", "l2_kb",
        "sid", "home", "decode_latency", "commit_budget", "precommit",
        # cycle state
        "now", "fetch_ptr", "fetch_hw", "fetch_limit", "stall_until",
        "blocking", "next_seq", "ff_retired", "decode", "buf_count",
        # per-seq columns
        "ep", "sq", "comp", "disp", "ccyc", "rdy", "pend", "gdst",
        "prior", "ren", "pred",
        # rename / wakeup
        "rat", "rn_free", "producer_of", "waiters", "buckets",
        "unresolved", "op_arr", "lrf", "reg_slices",
        # issue / rob / lsq views
        "alu_w", "mem_w", "ready_alu", "ready_mem", "act",
        "rob_w", "rob_c", "lsq_banks", "lsq_c",
        # predictor views
        "bp", "btb", "hist",
        # memory system
        "l1i_sets", "l1i_last", "l1i_memo", "l1d_sets", "l2_sets",
        "l2_nb", "l2_lat", "mshr", "sb", "sb_last", "full_banks",
        # counters (SimStats surface)
        "fetched", "committed", "squashed_count", "branches",
        "mispredicts", "l1i_acc", "l1i_miss", "l1d_acc", "l1d_miss",
        "l2_hits", "l2_misses", "operand_requests", "remote_hops",
        "lsq_violations", "store_forwards",
        "st_fetch_icache", "st_fetch_buffer", "st_fetch_redirect",
        "st_rob_full", "st_window_full", "st_freelist", "st_lrf_full",
        "st_issue_lsq_full",
    )


LaneSpec = Union[Tuple[int, float], Tuple[int, int, float]]


class BatchedSimulator:
    """Many VCore configurations over shared trace columns.

    ``traces`` is one :class:`Trace` or a sequence of them; ``lanes`` is
    a sequence of ``(num_slices, l2_cache_kb)`` pairs (single trace) or
    ``(trace_index, num_slices, l2_cache_kb)`` triples.  All lanes share
    one :class:`~repro.core.config.SimConfig` (grid sweeps vary only the
    VCore composition); each lane's results are bit-identical to a
    scalar ``simulate()`` call with the same parameters.
    """

    def __init__(self, traces: Union[Trace, Sequence[Trace]],
                 lanes: Sequence[LaneSpec],
                 config: Optional[SimConfig] = None,
                 warmup_traces: Optional[Sequence[Optional[Trace]]] = None,
                 warmup_addresses: Optional[
                     Sequence[Optional[Sequence[int]]]] = None,
                 timeout: Optional[int] = None,
                 obs: Any = None) -> None:
        if obs is not None and getattr(obs, "enabled", False):
            raise ValueError(
                "the batched backend does not support repro.obs "
                "instrumentation; use backend='python' for instrumented "
                "runs"
            )
        if isinstance(traces, Trace):
            traces = [traces]
        else:
            traces = list(traces)
        if not traces:
            raise ValueError("need at least one trace")
        if not lanes:
            raise ValueError("need at least one lane")
        cfg = config or SimConfig()
        if timeout is not None:
            cfg = replace(cfg, max_cycles=timeout)
        self.config = cfg
        self.traces = traces
        self.max_cycles = cfg.max_cycles

        s_cfg = cfg.slice_config
        c_cfg = cfg.cache_config
        self.fetch_width = s_cfg.fetch_width
        self.buffer_cap = s_cfg.instruction_buffer_size
        self.commit_width = s_cfg.commit_width
        self.mul_latency = s_cfg.mul_latency
        self.rob_cap = s_cfg.rob_size
        self.lsq_cap = s_cfg.lsq_size
        self.win_cap = s_cfg.issue_window_size
        self.lrf_cap = s_cfg.num_local_registers
        self.sb_cap = s_cfg.store_buffer_size
        self.mshr_cap = s_cfg.max_inflight_loads
        self.num_global = 64 * 8
        self.bp_entries = s_cfg.branch_predictor_entries
        self.btb_entries = s_cfg.btb_entries
        self.gshare = s_cfg.predictor_kind == "gshare"
        self.hist_mask = (1 << 8) - 1  # GSharePredictor history_bits=8
        self.redirect = cfg.mispredict_redirect
        self.ordered_lsq = cfg.ordered_lsq
        self.by_pc = cfg.fetch_assignment == "pc"
        self.mem_delay = c_cfg.memory_delay
        self.l1i_line = 2 * 4  # VCore: fetch-width instructions per line
        self.l1i_assoc = c_cfg.l1i.assoc
        self.l1i_sets_n = max(1, int(c_cfg.l1i.size_kb * 1024)
                              // self.l1i_line // self.l1i_assoc)
        self.l1i_hit = c_cfg.l1i.hit_delay
        self.l1d_line = c_cfg.l1d.block_bytes
        self.l1d_assoc = c_cfg.l1d.assoc
        self.l1d_sets_n = max(1, int(c_cfg.l1d.size_kb * 1024)
                              // self.l1d_line // self.l1d_assoc)
        self.l1d_hit = c_cfg.l1d.hit_delay

        specs: List[Tuple[int, int, float]] = []
        for spec in lanes:
            if len(spec) == 2:
                tidx, (ns, kb) = 0, spec  # type: ignore[misc]
            else:
                tidx, ns, kb = spec  # type: ignore[misc]
            if not 0 <= tidx < len(traces):
                raise ValueError(f"trace index {tidx} out of range")
            # Reuse the scalar path's validation (Equation 3 ranges).
            VCoreConfig(num_slices=int(ns), l2_cache_kb=float(kb))
            specs.append((int(tidx), int(ns), float(kb)))
        num_lanes = len(specs)
        slice_counts = [ns for _, ns, _ in specs]
        max_slices = max(slice_counts)

        self.rob = BatchedROB(num_lanes, max_slices, self.rob_cap)
        self.lsq = BatchedLSQ(num_lanes, slice_counts, self.lsq_cap)
        self._max_slices = max_slices

        self._cols = [trace_columns(t) for t in traces]
        self._warm_state: Dict[Tuple[int, int], Tuple[
            List[Dict[int, List[int]]], List[Dict[int, List[int]]],
            List[int]]] = {}
        if warmup_traces is not None and len(warmup_traces) != len(traces):
            raise ValueError("one warmup trace (or None) per trace")
        if (warmup_addresses is not None
                and len(warmup_addresses) != len(traces)):
            raise ValueError("one warmup address stream (or None) per trace")
        self._warmup_traces = warmup_traces
        self._warmup_addresses = warmup_addresses

        self.lanes = [self._make_lane(i, spec)
                      for i, spec in enumerate(specs)]

    def pred_tensor(self) -> np.ndarray:
        """(lane, slice, entry) predictor counters; unused Slices pad 1."""
        out = np.full((len(self.lanes), self._max_slices, self.bp_entries),
                      1, dtype=np.int8)
        for i, lane in enumerate(self.lanes):
            out[i, :lane.num_slices] = lane.bp
        return out

    def btb_tensor(self) -> np.ndarray:
        """(lane, slice, entry) BTB targets; -1 = no entry."""
        out = np.full((len(self.lanes), self._max_slices,
                       self.btb_entries), -1, dtype=np.int64)
        for i, lane in enumerate(self.lanes):
            out[i, :lane.num_slices] = lane.btb
        return out

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def _warm_group(self, tidx: int, ns: int) -> Tuple[
            List[Dict[int, List[int]]], List[Dict[int, List[int]]],
            List[int]]:
        """Warm L1 state + ordered L2 access stream for (trace, ns).

        Replays the scalar warmup exactly once per group; lanes copy the
        L1 dictionaries and replay the L2 stream into their own banks
        (bank count differs per lane, L1 filtering does not).
        """
        key = (tidx, ns)
        cached = self._warm_state.get(key)
        if cached is not None:
            return cached
        l1i: List[Dict[int, List[int]]] = [{} for _ in range(ns)]
        l1d: List[Dict[int, List[int]]] = [{} for _ in range(ns)]
        stream: List[int] = []
        fw = self.fetch_width
        l1i_n, l1i_a = self.l1i_sets_n, self.l1i_assoc
        l1d_n, l1d_a = self.l1d_sets_n, self.l1d_assoc
        l1d_line = self.l1d_line
        wt = self._warmup_traces[tidx] if self._warmup_traces else None
        if wt is not None:
            # _warm_caches: pc-interleaved L1I (misses stop at L1I),
            # home-slice L1D with misses falling through to L2.
            for inst in wt:
                pc = inst.pc
                sid = (pc // fw) % ns
                _cache_touch(l1i[sid], l1i_n, l1i_a, (pc * 4) // 8)
                if inst.mem is not None:
                    addr = inst.mem.address
                    home = (addr // _LSQ_LINE) % ns
                    if not _cache_touch(l1d[home], l1d_n, l1d_a,
                                        addr // l1d_line):
                        stream.append(addr)
        wa = (self._warmup_addresses[tidx]
              if self._warmup_addresses else None)
        if wa is not None:
            # _warm_data_caches: read stream through home L1Ds, then the
            # timed region's own PC stream through the L1Is; both fall
            # through to the (shared) L2 on miss.
            for addr in wa:
                home = (addr // _LSQ_LINE) % ns
                if not _cache_touch(l1d[home], l1d_n, l1d_a,
                                    addr // l1d_line):
                    stream.append(addr)
            cols = self._cols[tidx]
            for pc4 in cols.pc4:
                sid = (pc4 // 4 // fw) % ns
                if not _cache_touch(l1i[sid], l1i_n, l1i_a, pc4 // 8):
                    stream.append(pc4)
        result = (l1i, l1d, stream)
        self._warm_state[key] = result
        return result

    def _make_lane(self, index: int, spec: Tuple[int, int, float]) -> _Lane:
        tidx, ns, kb = spec
        cols = self._cols[tidx]
        lane = _Lane()
        lane.index = index
        lane.trace_index = tidx
        lane.cols = cols
        lane.num_slices = ns
        nb = int(round(kb / 64.0))
        lane.l2_nb = nb
        lane.l2_kb = nb * L2_BANK_BYTES / 1024
        lane.l2_lat = [d * L2_CYCLES_PER_DISTANCE + L2_BASE_LATENCY
                       for d in default_bank_distances(nb)]
        lane.sid = cols.sids(ns, self.fetch_width, self.by_pc)
        lane.home = cols.homes(ns)
        lane.decode_latency = (self.config.frontend_depth
                               + rename_pipeline_depth(
                                   ns,
                                   global_extra=self.config
                                   .global_rename_depth))
        lane.commit_budget = self.commit_width * ns
        lane.precommit = self.config.precommit_sync if ns > 1 else 0

        lane.now = 0
        lane.fetch_ptr = 0
        lane.fetch_hw = 0
        lane.fetch_limit = cols.length
        lane.stall_until = 0
        lane.blocking = None
        lane.next_seq = 0
        lane.ff_retired = 0
        lane.decode = deque()
        lane.buf_count = [0] * ns

        n = cols.length
        lane.ep = [0] * n
        lane.sq = bytearray(n)
        lane.comp = [-1] * n
        lane.disp = [-1] * n
        lane.ccyc = [-1] * n
        lane.rdy = [0] * n
        lane.pend = [0] * n
        lane.gdst = [-1] * n
        lane.prior = [-1] * n
        lane.ren = [0] * n
        lane.pred = bytearray(n)

        # Rename state as flat arrays (-1 = unmapped / no producer /
        # no cached arrival; None = no consumer-slice record): the key
        # spaces are small and dense, so array indexing replaces the
        # scalar's dict lookups with identical observable behaviour.
        lane.rat = [-1] * (cols.max_arch + 1)
        # GlobalRenameState: pops from the tail, so regs allocate 0,1,2...
        lane.rn_free = list(range(self.num_global - 1, -1, -1))
        lane.producer_of = [-1] * self.num_global
        lane.waiters = {}
        lane.buckets = {}
        lane.unresolved = set()
        lane.op_arr = [[-1] * self.num_global for _ in range(ns)]
        lane.lrf = [_LRF(self.lrf_cap) for _ in range(ns)]
        lane.reg_slices = [None] * self.num_global

        lane.alu_w = [[] for _ in range(ns)]
        lane.mem_w = [[] for _ in range(ns)]
        # Event-driven issue: per-Slice seq-sorted lists of (seq, epoch)
        # entries whose operands are ready (pend == 0, rdy <= now), plus
        # the cycle -> [(seq, epoch)] activation buckets that feed them.
        # Entries are validated against sq/ep on read (like ``buckets``),
        # so squashes filter lazily.
        lane.ready_alu = [[] for _ in range(ns)]
        lane.ready_mem = [[] for _ in range(ns)]
        lane.act = {}
        lane.rob_w = self.rob.windows[index]
        lane.rob_c = self.rob.occupancy[index]
        lane.lsq_banks = self.lsq.banks[index]
        lane.lsq_c = self.lsq.occupancy[index]
        # Predictor state per (slice): 2-bit counters init 1 (weak NT)
        # and BTB targets (-1 = no entry).  Plain lists on the hot path;
        # ``pred_tensor()`` / ``btb_tensor()`` export the (lane, slice,
        # entry) numpy views.
        lane.bp = [[1] * self.bp_entries for _ in range(ns)]
        lane.btb = [[-1] * self.btb_entries for _ in range(ns)]
        lane.hist = [0] * ns

        # Shared warm state: copy L1 dicts, replay the L2 miss stream
        # into this lane's own banks (uncounted, like the scalar warmup
        # which resets counters afterwards).
        l1i, l1d, stream = self._warm_group(tidx, ns)
        lane.l1i_sets = [{idx: list(ways) for idx, ways in sets.items()}
                         for sets in l1i]
        lane.l1d_sets = [{idx: list(ways) for idx, ways in sets.items()}
                         for sets in l1d]
        lane.l2_sets = [{} for _ in range(nb)]
        if nb:
            l2_sets = lane.l2_sets
            for addr in stream:
                line = addr // L2_LINE_BYTES
                _cache_touch(l2_sets[line % nb], _L2_SETS, L2_ASSOC,
                             line // nb)
        lane.mshr = [{} for _ in range(ns)]
        lane.sb = [deque() for _ in range(ns)]
        lane.sb_last = [-1] * ns
        lane.full_banks = 0
        lane.l1i_last = [-1] * ns
        # The repeat-pair memo assumes the access line and its prefetch
        # line (always ``a`` and ``a + ns``) live in different L1I sets,
        # so a repeat cannot have been evicted by its own prefetch.
        lane.l1i_memo = ns % self.l1i_sets_n != 0

        lane.fetched = 0
        lane.committed = 0
        lane.squashed_count = 0
        lane.branches = 0
        lane.mispredicts = 0
        lane.l1i_acc = 0
        lane.l1i_miss = 0
        lane.l1d_acc = 0
        lane.l1d_miss = 0
        lane.l2_hits = 0
        lane.l2_misses = 0
        lane.operand_requests = 0
        lane.remote_hops = 0
        lane.lsq_violations = 0
        lane.store_forwards = 0
        lane.st_fetch_icache = 0
        lane.st_fetch_buffer = 0
        lane.st_fetch_redirect = 0
        lane.st_rob_full = 0
        lane.st_window_full = 0
        lane.st_freelist = 0
        lane.st_lrf_full = 0
        lane.st_issue_lsq_full = 0
        return lane

    # ------------------------------------------------------------------
    # lazy memory-system background work
    # ------------------------------------------------------------------

    def _catch_up_ticks(self, lane: _Lane, sid: int, now: int) -> None:
        """Apply the store-buffer drains of cycles ``(last, now-1]``.

        The scalar model drains at most one buffered store per Slice per
        cycle (each drain is a *counted* L1D write access); the drain
        cycle of the head is ``max(previous_drain + 1, commit_cycle + 1)``,
        a pure function of cycle numbers, so it can be replayed exactly
        whenever the Slice's memory system is next observed.
        """
        upto = now - 1
        last = lane.sb_last[sid]
        if upto <= last:
            return
        sb = lane.sb[sid]
        if sb:
            sets = lane.l1d_sets[sid]
            n_sets, assoc = self.l1d_sets_n, self.l1d_assoc
            l1d_line = self.l1d_line
            while sb:
                addr, commit = sb[0]
                t = commit + 1
                if t <= last:
                    t = last + 1
                if t > upto:
                    break
                sb.popleft()
                lane.l1d_acc += 1
                if not _cache_touch(sets, n_sets, assoc, addr // l1d_line):
                    lane.l1d_miss += 1
                last = t
        lane.sb_last[sid] = upto

    def _l2_access(self, lane: _Lane, addr: int) -> Tuple[bool, int]:
        nb = lane.l2_nb
        if not nb:
            return False, 0
        line = addr // L2_LINE_BYTES
        bank = line % nb
        hit = _cache_touch(lane.l2_sets[bank], _L2_SETS, L2_ASSOC,
                           line // nb)
        if hit:
            lane.l2_hits += 1
        else:
            lane.l2_misses += 1
        return hit, lane.l2_lat[bank]

    def _hier_access(self, lane: _Lane, sid: int, addr: int,
                     t: int, now: int) -> int:
        """CacheHierarchy.access for a load issued at cycle ``t``.

        ``now`` is the simulator's current cycle: background ticks are
        caught up to it first (MSHR entries with fill < now would have
        been retired; store-buffer drains through now-1 are replayed).
        """
        self._catch_up_ticks(lane, sid, now)
        l1d_line = self.l1d_line
        sb = lane.sb[sid]
        if sb:
            line = addr // l1d_line
            for buffered_addr, _ in sb:
                if buffered_addr // l1d_line == line:
                    return t + self.l1d_hit
        mshr = lane.mshr[sid]
        if mshr:
            stale = [l for l, fill in mshr.items() if fill < now]
            for l in stale:
                del mshr[l]
        mshr_line = addr // _LSQ_LINE
        in_flight = mshr.get(mshr_line)
        sets = lane.l1d_sets[sid]
        if in_flight is not None:
            # Secondary miss: merge as a waiter; the L1D access still
            # counts and touches LRU state.
            lane.l1d_acc += 1
            if not _cache_touch(sets, self.l1d_sets_n, self.l1d_assoc,
                                addr // l1d_line):
                lane.l1d_miss += 1
            ready = t + self.l1d_hit
            return in_flight if in_flight > ready else ready
        lane.l1d_acc += 1
        if _cache_touch(sets, self.l1d_sets_n, self.l1d_assoc,
                        addr // l1d_line):
            return t + self.l1d_hit
        lane.l1d_miss += 1
        l2_hit, l2_lat = self._l2_access(lane, addr)
        fill = t + self.l1d_hit + l2_lat
        if not l2_hit:
            fill += self.mem_delay
        if len(mshr) >= self.mshr_cap:
            retry = min(mshr.values())
            return (retry if retry > fill else fill) + 1
        mshr[mshr_line] = fill
        return fill

    # ------------------------------------------------------------------
    # pipeline events
    # ------------------------------------------------------------------

    def _operand_arrival(self, lane: _Lane, producer: int, consumer: int,
                         t: int) -> int:
        sid = lane.sid
        p_slice = sid[producer]
        c_slice = sid[consumer]
        if p_slice == c_slice:
            return t
        reg = lane.gdst[producer]
        op_arr = lane.op_arr[c_slice]
        if reg >= 0:
            cached = op_arr[reg]
            if cached >= 0:
                return t if t >= cached else cached
        hops = p_slice - c_slice
        if hops < 0:
            hops = -hops
        hop_latency = 1 + hops
        request_arrives = lane.disp[consumer] + hop_latency
        arrival = (t if t >= request_arrives else request_arrives) \
            + hop_latency
        lane.operand_requests += 1
        lane.remote_hops += hops
        if reg >= 0:
            op_arr[reg] = arrival
            # Remember which slices cached this register so release
            # only touches those (a no-op everywhere else in the scalar).
            slices = lane.reg_slices[reg]
            if slices is None:
                lane.reg_slices[reg] = [c_slice]
            else:
                slices.append(c_slice)
            lane.lrf[c_slice].allocate_remote(reg)
        return arrival

    def _resolve_branch(self, lane: _Lane, seq: int, t: int) -> None:
        sid = lane.sid[seq]
        pc = lane.cols.pcs[seq]
        taken = bool(lane.cols.flags[seq] & F_TAKEN)
        bp = lane.bp
        if self.gshare:
            index = (pc ^ lane.hist[sid]) % self.bp_entries
        else:
            index = pc % self.bp_entries
        row = bp[sid]
        counter = row[index]
        if taken:
            if counter < 3:
                row[index] = counter + 1
        elif counter > 0:
            row[index] = counter - 1
        if self.gshare:
            lane.hist[sid] = (((lane.hist[sid] << 1) | int(taken))
                              & self.hist_mask)
        target = lane.cols.targets[seq]
        if taken and target >= 0:
            lane.btb[sid][pc % self.btb_entries] = target
        if bool(lane.pred[seq]) != taken:
            lane.mispredicts += 1
            blocking = lane.blocking
            if (blocking is not None and blocking[0] == seq
                    and blocking[1] == lane.ep[seq]):
                lane.blocking = None
                redirect = t + self.redirect
                if redirect > lane.stall_until:
                    lane.stall_until = redirect

    def _predict(self, lane: _Lane, sid: int, pc: int) -> bool:
        """BranchUnit.predict: direction counter gated by BTB presence."""
        if self.gshare:
            index = (pc ^ lane.hist[sid]) % self.bp_entries
        else:
            index = pc % self.bp_entries
        taken = lane.bp[sid][index] >= 2
        if taken and lane.btb[sid][pc % self.btb_entries] < 0:
            return False
        return taken

    def _commit_store(self, lane: _Lane, seq: int, now: int) -> bool:
        home = lane.home[seq]
        line = lane.cols.lines[seq]
        bank = lane.lsq_banks[home]
        violators = [load_seq for load_seq, entry in bank.items()
                     if not entry[0] and load_seq > seq
                     and entry[1] == line and entry[3] < seq
                     and entry[2] <= now]
        if violators:
            oldest = min(violators)
            lane.lsq_violations += len(violators)
            self._replay_from(lane, oldest, now)
        self._catch_up_ticks(lane, home, now)
        sb = lane.sb[home]
        if len(sb) >= self.sb_cap:
            return False
        sb.append((lane.cols.addrs[seq], now))
        del bank[seq]
        lane.lsq_c[home] -= 1
        if len(bank) == self.lsq_cap - 1:
            lane.full_banks -= 1
        return True

    def _replay_from(self, lane: _Lane, victim: int, now: int) -> None:
        """Memory-order violation: squash and refetch from ``victim``."""
        limit = victim - 1
        rob_w = lane.rob_w
        rob_c = lane.rob_c
        sid = lane.sid
        sq = lane.sq
        squashed: List[int] = []
        while rob_w and rob_w[-1] > limit:
            seq = rob_w.pop()
            rob_c[sid[seq]] -= 1
            sq[seq] = 1
            squashed.append(seq)
        rat = lane.rat
        free = lane.rn_free
        producer_of = lane.producer_of
        gdst = lane.gdst
        prior = lane.prior
        dst = lane.cols.dst
        num_slices = lane.num_slices
        reg_slices = lane.reg_slices
        for seq in squashed:
            reg = gdst[seq]
            if reg >= 0:
                # GlobalRenameState.rollback: restore the RAT (the -1
                # sentinel stands in for the scalar's del), then release
                # the squashed physical register.
                rat[dst[seq]] = prior[seq]
                free.append(reg)
                producer_of[reg] = -1
                slices = reg_slices[reg]
                if slices is not None:
                    reg_slices[reg] = None
                    for s in slices:
                        lane.op_arr[s][reg] = -1
                        lane.lrf[s].release(reg)
                lane.lrf[sid[seq]].release(reg)
        for s in range(num_slices):
            lane.alu_w[s] = [q for q in lane.alu_w[s] if q <= limit]
            lane.mem_w[s] = [q for q in lane.mem_w[s] if q <= limit]
        decode = lane.decode
        buf_count = lane.buf_count
        while decode and decode[-1] >= victim:
            seq = decode.pop()
            sq[seq] = 1
            buf_count[sid[seq]] -= 1
        lsq_c = lane.lsq_c
        lsq_cap = self.lsq_cap
        for s, bank in enumerate(lane.lsq_banks):
            victims = [q for q in bank if q > limit]
            if victims:
                was_full = len(bank) >= lsq_cap
                for q in victims:
                    del bank[q]
                lsq_c[s] -= len(victims)
                if was_full and len(bank) < lsq_cap:
                    lane.full_banks -= 1
        unresolved = lane.unresolved
        if unresolved:
            stale = [q for q in unresolved if q >= victim]
            for q in stale:
                unresolved.discard(q)
        lane.squashed_count += len(squashed)
        blocking = lane.blocking
        if blocking is not None and blocking[0] >= victim:
            lane.blocking = None
        lane.fetch_ptr = victim
        lane.next_seq = victim
        redirect = now + self.redirect
        if redirect > lane.stall_until:
            lane.stall_until = redirect

    def _unregister_waiters(self, lane: _Lane, seq: int,
                            producers: List[int]) -> None:
        """Back out a failed dispatch's wakeup registrations."""
        epoch = lane.ep[seq]
        waiters = lane.waiters
        for producer in set(producers):
            waiters[producer] = [
                entry for entry in waiters[producer]
                if entry[0] != seq or entry[1] != epoch
            ]

    # ------------------------------------------------------------------
    # the cycle loop
    # ------------------------------------------------------------------

    def _advance(self, lane: _Lane, target: int, max_steps: int) -> None:
        """Run one lane for up to ``max_steps`` cycles or until
        ``target`` instructions have committed."""
        max_cycles = self.max_cycles
        cols = lane.cols
        flags = cols.flags
        pcs = cols.pcs
        pc4s = cols.pc4
        sid_of = lane.sid
        comp = lane.comp
        rdy = lane.rdy
        pend = lane.pend
        sq = lane.sq
        ep = lane.ep
        buckets = lane.buckets
        rob_w = lane.rob_w
        decode = lane.decode
        buf_count = lane.buf_count
        num_slices = lane.num_slices
        fetch_width = self.fetch_width
        buffer_cap = self.buffer_cap
        mul_latency = self.mul_latency
        lsq_cap = self.lsq_cap
        precommit = lane.precommit
        commit_budget = lane.commit_budget
        decode_latency = lane.decode_latency
        ordered = self.ordered_lsq
        l1i_sets = lane.l1i_sets
        l1i_n = self.l1i_sets_n
        l1i_a = self.l1i_assoc
        ren = lane.ren

        ccyc = lane.ccyc
        gprior = lane.prior
        home_of = lane.home
        rob_c = lane.rob_c
        lsq_banks = lane.lsq_banks
        lsq_c = lane.lsq_c
        alu_windows = lane.alu_w
        mem_windows = lane.mem_w
        l1i_last = lane.l1i_last
        l1i_memo = lane.l1i_memo
        rob_cap = self.rob_cap
        win_cap = self.win_cap
        lrf_cap = self.lrf_cap
        rn_free = lane.rn_free
        rat = lane.rat
        producer_of = lane.producer_of
        disp = lane.disp
        waiters = lane.waiters
        srcs_col = cols.srcs
        dst_col = cols.dst
        gdst = lane.gdst
        rdy = lane.rdy
        lrfs = lane.lrf
        unresolved_set = lane.unresolved
        ready_alu = lane.ready_alu
        ready_mem = lane.ready_mem
        act = lane.act
        reg_slices = lane.reg_slices
        op_arrs = lane.op_arr
        lines_col = cols.lines
        addrs_col = cols.addrs

        now = lane.now
        steps = 0
        while lane.committed < target and steps < max_steps:
            if now >= max_cycles:
                lane.now = now
                raise SimulationTimeout(
                    f"{lane.committed}/{target} committed after "
                    f"{now} cycles"
                )

            # ---- idle skip ----
            # Pipeline drained + fetch stalled on a redirect/miss window:
            # the only per-cycle effect until ``stall_until`` is one
            # fetch-redirect stall count, so those cycles batch.
            if (not rob_w and not decode and lane.blocking is None
                    and now < lane.stall_until):
                skip = lane.stall_until - now
                budget_left = max_steps - steps
                if skip > budget_left:
                    skip = budget_left
                if now + skip > max_cycles:
                    skip = max_cycles - now
                if skip > 0:
                    lane.st_fetch_redirect += skip
                    now += skip
                    steps += skip
                    continue

            steps += 1

            # ---- complete ----
            # (_on_complete inlined: wakeup is a per-instruction event
            # on the hottest path.)
            batch = buckets.pop(now, None)
            if batch is not None:
                for seq, seq_ep in batch:
                    if sq[seq] or ep[seq] != seq_ep:
                        continue
                    t = comp[seq]
                    unresolved_set.discard(seq)
                    if flags[seq] & F_BRANCH:
                        self._resolve_branch(lane, seq, t)
                    waiting = waiters.pop(seq, None)
                    if waiting:
                        p_slice = sid_of[seq]
                        for consumer, consumer_ep in waiting:
                            if sq[consumer] or ep[consumer] != consumer_ep:
                                continue
                            if sid_of[consumer] == p_slice:
                                # Same-Slice forward: zero network
                                # latency, no operand-cache traffic.
                                arrival = t
                            else:
                                arrival = self._operand_arrival(
                                    lane, seq, consumer, t)
                            if arrival > rdy[consumer]:
                                rdy[consumer] = arrival
                            remaining = pend[consumer] - 1
                            pend[consumer] = remaining
                            if not remaining:
                                # Last operand: rdy is final; eligible
                                # this cycle -> ready list (issue runs
                                # later this cycle), else activation.
                                cycle = rdy[consumer]
                                entry = (consumer, consumer_ep)
                                if cycle <= now:
                                    if flags[consumer] & F_MEM:
                                        insort(ready_mem[
                                            sid_of[consumer]], entry)
                                    else:
                                        insort(ready_alu[
                                            sid_of[consumer]], entry)
                                else:
                                    bucket = act.get(cycle)
                                    if bucket is None:
                                        act[cycle] = [entry]
                                    else:
                                        bucket.append(entry)

            # ---- ready-list activation ----
            batch = act.pop(now, None)
            if batch is not None:
                for seq, seq_ep in batch:
                    if sq[seq] or ep[seq] != seq_ep:
                        continue
                    if flags[seq] & F_MEM:
                        insort(ready_mem[sid_of[seq]], (seq, seq_ep))
                    else:
                        insort(ready_alu[sid_of[seq]], (seq, seq_ep))

            # ---- commit ----
            if rob_w:
                budget = commit_budget
                while budget:
                    head = rob_w[0]
                    head_complete = comp[head]
                    if head_complete < 0 or head_complete + precommit > now:
                        break
                    bits = flags[head]
                    if bits & F_STORE:
                        if not self._commit_store(lane, head, now):
                            break
                    rob_w.popleft()
                    rob_c[sid_of[head]] -= 1
                    ccyc[head] = now
                    lane.committed += 1
                    if bits & F_LOAD:
                        home = home_of[head]
                        bank = lsq_banks[home]
                        if bank.pop(head, None) is not None:
                            lsq_c[home] -= 1
                            if len(bank) == lsq_cap - 1:
                                lane.full_banks -= 1
                    prior = gprior[head]
                    if prior >= 0:
                        # Inlined _release_global: free ``prior`` from
                        # the rename pool and every Slice that holds it.
                        rn_free.append(prior)
                        producer = producer_of[prior]
                        producer_of[prior] = -1
                        slices = reg_slices[prior]
                        if slices is not None:
                            reg_slices[prior] = None
                            for s2 in slices:
                                op_arrs[s2][prior] = -1
                                lrf = lrfs[s2]
                                lrf.resident.discard(prior)
                                lrf.cached_remote.discard(prior)
                        if producer >= 0:
                            lrf = lrfs[sid_of[producer]]
                            lrf.resident.discard(prior)
                            lrf.cached_remote.discard(prior)
                    budget -= 1
                    if not rob_w:
                        break

            # ---- issue ----
            # Ready lists hold exactly the entries the scalar's window
            # scan would accept (pend == 0, rdy <= now), seq-sorted, so
            # the per-cycle scan cost is O(ready churn) instead of
            # O(window size).  Stale (squashed/refetched) entries are
            # filtered on read, like the completion buckets.
            head_seq = rob_w[0] if rob_w else -1
            min_unresolved = -1
            if ordered and unresolved_set:
                min_unresolved = min(unresolved_set)
            for sid in range(num_slices):
                r = ready_alu[sid]
                while r:
                    seq, e = r[0]
                    if sq[seq] or ep[seq] != e:
                        del r[0]
                        continue
                    del r[0]
                    alu_windows[sid].remove(seq)
                    cyc = now + (mul_latency
                                 if flags[seq] & F_MUL else 1)
                    comp[seq] = cyc
                    # Inline _schedule_completion: latency >= 1 so the
                    # now+1 floor can never bind.
                    bucket = buckets.get(cyc)
                    entry = (seq, e)
                    if bucket is None:
                        buckets[cyc] = [entry]
                    else:
                        bucket.append(entry)
                    break
                r = ready_mem[sid]
                if r:
                    pick = -1
                    if not lane.full_banks and not ordered:
                        # Fast path: the predicate cannot fail, so the
                        # first live entry is the scalar's min-seq pick.
                        while r:
                            seq, e = r[0]
                            if sq[seq] or ep[seq] != e:
                                del r[0]
                                continue
                            pick = seq
                            del r[0]
                            break
                    else:
                        # Exact path: the scalar evaluates the predicate
                        # for *every* ready candidate (each failing
                        # bank-full candidate counts one issue stall),
                        # even after a pick is found.
                        i = 0
                        pick_i = -1
                        while i < len(r):
                            seq, e = r[i]
                            if sq[seq] or ep[seq] != e:
                                del r[i]
                                continue
                            if (len(lsq_banks[home_of[seq]]) >= lsq_cap
                                    and seq != head_seq):
                                lane.st_issue_lsq_full += 1
                                i += 1
                                continue
                            if (ordered and flags[seq] & F_LOAD
                                    and min_unresolved >= 0
                                    and min_unresolved < seq):
                                i += 1
                                continue
                            if pick_i < 0:
                                pick_i = i
                            i += 1
                        if pick_i >= 0:
                            pick = r[pick_i][0]
                            del r[pick_i]
                    if pick >= 0:
                        mem_windows[sid].remove(pick)
                        # -- inlined _execute_mem --
                        home = home_of[pick]
                        distance = sid - home
                        if distance < 0:
                            distance = -distance
                        sort_latency = 0 if distance == 0 else 1 + distance
                        resolved = now + 1 + sort_latency
                        bank = lsq_banks[home]
                        is_store = flags[pick] & F_STORE
                        if len(bank) >= lsq_cap and pick != head_seq:
                            # Defensive parity with the scalar bank-full
                            # re-insert; the issue predicate makes this
                            # unreachable.
                            insort(mem_windows[sid], pick)
                            insort(ready_mem[sid], (pick, ep[pick]))
                        else:
                            line = lines_col[pick]
                            bank_entry = [bool(is_store), line,
                                          resolved, -1]
                            bank[pick] = bank_entry
                            lsq_c[home] += 1
                            if len(bank) == lsq_cap:
                                lane.full_banks += 1
                            if is_store:
                                complete = resolved
                            else:
                                forwarding = -1
                                for store_seq, store_entry in bank.items():
                                    if (store_entry[0] and store_seq < pick
                                            and store_entry[1] == line
                                            and store_entry[2] <= resolved
                                            and store_seq > forwarding):
                                        forwarding = store_seq
                                if forwarding >= 0:
                                    bank_entry[3] = forwarding
                                    lane.store_forwards += 1
                                    complete = resolved + 1
                                else:
                                    complete = self._hier_access(
                                        lane, home, addrs_col[pick],
                                        resolved, now) + sort_latency
                            comp[pick] = complete
                            # Inline _schedule_completion: complete >=
                            # resolved >= now + 1, so the floor never
                            # binds.
                            bucket = buckets.get(complete)
                            entry = (pick, ep[pick])
                            if bucket is None:
                                buckets[complete] = [entry]
                            else:
                                bucket.append(entry)

            # ---- dispatch ----
            # (_try_dispatch inlined: per-call attribute traffic was the
            # top profile entry; semantics and stall-count order are
            # byte-for-byte the method's.)
            if decode:
                quotas = [fetch_width] * num_slices
                while decode:
                    seq = decode[0]
                    if ren[seq] > now:
                        break
                    sid = sid_of[seq]
                    if quotas[sid] <= 0:
                        break
                    if rob_c[sid] >= rob_cap:
                        lane.st_rob_full += 1
                        break
                    bits = flags[seq]
                    window = (mem_windows[sid] if bits & F_MEM
                              else alu_windows[sid])
                    if len(window) >= win_cap:
                        lane.st_window_full += 1
                        break
                    writes = bits & F_WRITES
                    if not rn_free and writes:
                        lane.st_freelist += 1
                        break
                    ready = now + 1
                    pending = 0
                    fixups = None
                    registered = None
                    for arch in srcs_col[seq]:
                        mapped = rat[arch]
                        if mapped < 0:
                            continue
                        producer = producer_of[mapped]
                        if producer < 0 or ccyc[producer] >= 0:
                            continue
                        if comp[producer] >= 0:
                            # Producer already complete: the operand
                            # request is priced from this instruction's
                            # dispatch cycle.
                            disp[seq] = now
                            if fixups is None:
                                fixups = [producer]
                            else:
                                fixups.append(producer)
                        else:
                            bucket = waiters.get(producer)
                            entry = (seq, ep[seq])
                            if bucket is None:
                                waiters[producer] = [entry]
                            else:
                                bucket.append(entry)
                            pending += 1
                            if registered is None:
                                registered = [producer]
                            else:
                                registered.append(producer)
                    if writes:
                        lrf = lrfs[sid]
                        # Capacity probe (the scalar allocates a
                        # placeholder and releases it).  Below capacity
                        # the probe is a guaranteed-success state no-op
                        # and is skipped; at capacity it can evict a
                        # cached remote or fail, so it must run.
                        if len(lrf.resident) >= lrf_cap:
                            if not lrf.allocate_dst(-1):
                                lane.st_lrf_full += 1
                                if registered:
                                    self._unregister_waiters(
                                        lane, seq, registered)
                                break
                            lrf.release(-1)
                        if not rn_free:  # RenameStallError parity
                            lane.st_freelist += 1  # (unreachable)
                            if registered:
                                self._unregister_waiters(
                                    lane, seq, registered)
                            break
                        reg = rn_free.pop()
                        arch = dst_col[seq]
                        gprior[seq] = rat[arch]
                        rat[arch] = reg
                        gdst[seq] = reg
                        # allocate_dst(reg) cannot evict here: reg is
                        # fresh (never resident) and the probe above
                        # guaranteed len(resident) < capacity.
                        lrf.resident.add(reg)
                        producer_of[reg] = seq
                    disp[seq] = now
                    pend[seq] = pending
                    if bits & F_STORE:
                        unresolved_set.add(seq)
                    if fixups:
                        for producer in fixups:
                            arrival = self._operand_arrival(
                                lane, producer, seq, comp[producer])
                            if arrival > ready:
                                ready = arrival
                    rdy[seq] = ready
                    if not pending:
                        # Operands already satisfied: eligibility time
                        # is final now (ready >= now + 1, so always a
                        # future activation).
                        entry = (seq, ep[seq])
                        bucket = act.get(ready)
                        if bucket is None:
                            act[ready] = [entry]
                        else:
                            bucket.append(entry)
                    rob_w.append(seq)
                    rob_c[sid] += 1
                    window.append(seq)
                    decode.popleft()
                    buf_count[sid] -= 1
                    quotas[sid] -= 1
                    lane.next_seq += 1

            # ---- fetch ----
            if lane.blocking is not None or now < lane.stall_until:
                lane.st_fetch_redirect += 1
            else:
                quotas = [fetch_width] * num_slices
                ptr = lane.fetch_ptr
                hw = lane.fetch_hw
                limit = lane.fetch_limit
                waiters = lane.waiters
                while ptr < limit:
                    seq = ptr
                    sid = sid_of[seq]
                    if quotas[sid] <= 0:
                        break
                    if buf_count[sid] >= buffer_cap:
                        lane.st_fetch_buffer += 1
                        break
                    # L1I fetch with next-line prefetch.  The access
                    # line and its prefetch line are always ``a`` and
                    # ``a + num_slices``; repeating the previous pair
                    # re-touches both MRU entries (a state no-op), so
                    # the memoized repeat skips the LRU work entirely.
                    address = pc4s[seq]
                    lane.l1i_acc += 1
                    line = address // 8
                    if line == l1i_last[sid]:
                        hit = True
                    else:
                        hit = _cache_touch(l1i_sets[sid], l1i_n, l1i_a,
                                           line)
                        _cache_touch(l1i_sets[sid], l1i_n, l1i_a,
                                     line + num_slices)
                        if l1i_memo:
                            l1i_last[sid] = line
                    if not hit:
                        lane.l1i_miss += 1
                        l2_hit, l2_lat = self._l2_access(lane, address)
                        delay = self.l1i_hit + l2_lat
                        if not l2_hit:
                            delay += self.mem_delay
                        lane.stall_until = now + delay
                        lane.st_fetch_icache += 1
                        break
                    if seq >= hw:
                        # First-ever fetch: every column still holds its
                        # construction value (the exact reset state) and
                        # no stale (seq, epoch) entries exist anywhere,
                        # so epoch 0 stays valid and the resets vanish.
                        hw = seq + 1
                        epoch = ep[seq]
                    else:
                        epoch = ep[seq] + 1
                        ep[seq] = epoch
                        sq[seq] = 0
                        comp[seq] = -1
                        lane.disp[seq] = -1
                        lane.ccyc[seq] = -1
                        pend[seq] = 0
                        lane.gdst[seq] = -1
                        lane.prior[seq] = -1
                        waiters.pop(seq, None)
                    ren[seq] = now + decode_latency
                    decode.append(seq)
                    buf_count[sid] += 1
                    lane.fetched += 1
                    quotas[sid] -= 1
                    ptr += 1
                    bits = flags[seq]
                    if bits & F_BRANCH:
                        lane.branches += 1
                        pc = pcs[seq]
                        predicted = self._predict(lane, sid, pc)
                        lane.pred[seq] = 1 if predicted else 0
                        if predicted != bool(bits & F_TAKEN):
                            lane.blocking = (seq, epoch)
                            break
                lane.fetch_ptr = ptr
                lane.fetch_hw = hw

            now += 1
        lane.now = now

    # ------------------------------------------------------------------
    # functional fast-forward (sampled composition)
    # ------------------------------------------------------------------

    def _fast_forward(self, lane: _Lane, count: int) -> int:
        """Scalar ``fast_forward`` on one lane: caches, predictors and
        store state stay warm; no cycles elapse; stats untouched except
        the full-trace L1D/L2 counters (which the sampled estimator
        passes through unscaled)."""
        if (lane.decode or lane.rob_w or lane.unresolved
                or lane.blocking is not None):
            raise RuntimeError(
                "cannot fast-forward with instructions in flight; run "
                "the detailed window to completion first"
            )
        cols = lane.cols
        start = lane.fetch_ptr
        stop = min(start + count, cols.length)
        if stop <= start:
            return 0
        # Pending store-buffer drains precede (in cycle order) any L1D
        # touch this fast-forward performs.
        for sid in range(lane.num_slices):
            self._catch_up_ticks(lane, sid, lane.now)
        flags = cols.flags
        pc4s = cols.pc4
        pcs = cols.pcs
        addrs = cols.addrs
        targets = cols.targets
        sid_of = lane.sid
        home_of = lane.home
        l1i_sets = lane.l1i_sets
        l1d_sets = lane.l1d_sets
        l1i_n, l1i_a = self.l1i_sets_n, self.l1i_assoc
        l1d_n, l1d_a = self.l1d_sets_n, self.l1d_assoc
        l1d_line = self.l1d_line
        gshare = self.gshare
        bp = lane.bp
        btb = lane.btb
        bp_entries = self.bp_entries
        btb_entries = self.btb_entries
        hist_mask = self.hist_mask
        l1i_last = lane.l1i_last
        l1i_memo = lane.l1i_memo
        num_slices = lane.num_slices
        for seq in range(start, stop):
            sid = sid_of[seq]
            address = pc4s[seq]
            # L1I access + next-line prefetch (same repeat-pair memo as
            # detailed fetch); the I-cache counters are not part of
            # SimStats outside detailed fetch, but the L2 counters are
            # full-trace.
            line = address // 8
            if line != l1i_last[sid]:
                if not _cache_touch(l1i_sets[sid], l1i_n, l1i_a, line):
                    self._l2_access(lane, address)
                _cache_touch(l1i_sets[sid], l1i_n, l1i_a,
                             line + num_slices)
                if l1i_memo:
                    l1i_last[sid] = line
            bits = flags[seq]
            if bits:
                if bits & F_BRANCH:
                    # BranchUnit.resolve: train the predictor, install
                    # the BTB target (prediction itself is stateless).
                    taken = bool(bits & F_TAKEN)
                    pc = pcs[seq]
                    if gshare:
                        index = (pc ^ lane.hist[sid]) % bp_entries
                    else:
                        index = pc % bp_entries
                    row = bp[sid]
                    counter = row[index]
                    if taken:
                        if counter < 3:
                            row[index] = counter + 1
                    elif counter > 0:
                        row[index] = counter - 1
                    if gshare:
                        lane.hist[sid] = (((lane.hist[sid] << 1)
                                           | int(taken)) & hist_mask)
                    target = targets[seq]
                    if taken and target >= 0:
                        btb[sid][pc % btb_entries] = target
                elif bits & F_MEM:
                    address = addrs[seq]
                    home = home_of[seq]
                    lane.l1d_acc += 1
                    if not _cache_touch(l1d_sets[home], l1d_n, l1d_a,
                                        address // l1d_line):
                        lane.l1d_miss += 1
                        self._l2_access(lane, address)
        retired = stop - start
        lane.fetch_ptr = stop
        lane.next_seq = stop
        lane.ff_retired += retired
        return retired

    # ------------------------------------------------------------------
    # drivers and results
    # ------------------------------------------------------------------

    #: Cycles one lane runs before the driver rotates to the next; large
    #: enough to amortize the per-chunk local-variable hoist, small
    #: enough that lanes progress in near-lockstep.
    CHUNK_CYCLES = 4096

    def run_to_commit(self, targets: Union[int, Sequence[int]],
                      lanes: Optional[Sequence[_Lane]] = None) -> None:
        """Advance lanes until each reaches its absolute commit target."""
        if lanes is None:
            lanes = self.lanes
        if isinstance(targets, int):
            targets = [targets] * len(lanes)
        if len(targets) != len(lanes):
            raise ValueError("one commit target per lane")
        chunk = self.CHUNK_CYCLES
        active = [(lane, int(t)) for lane, t in zip(lanes, targets)
                  if lane.committed < t]
        while active:
            still = []
            for lane, target in active:
                self._advance(lane, target, chunk)
                if lane.committed < target:
                    still.append((lane, target))
            active = still

    def _lane_stats(self, lane: _Lane) -> SimStats:
        """This lane's SimStats; applies any outstanding lazy ticks."""
        for sid in range(lane.num_slices):
            self._catch_up_ticks(lane, sid, lane.now)
        return SimStats(
            cycles=lane.now,
            fetched=lane.fetched,
            committed=lane.committed,
            squashed=lane.squashed_count,
            branches=lane.branches,
            branch_mispredicts=lane.mispredicts,
            l1i_accesses=lane.l1i_acc,
            l1i_misses=lane.l1i_miss,
            l1d_accesses=lane.l1d_acc,
            l1d_misses=lane.l1d_miss,
            l2_accesses=lane.l2_hits + lane.l2_misses,
            l2_misses=lane.l2_misses,
            operand_requests=lane.operand_requests,
            remote_operand_hops=lane.remote_hops,
            lsq_violations=lane.lsq_violations,
            store_forwards=lane.store_forwards,
            stalls=StallBreakdown(
                fetch_icache=lane.st_fetch_icache,
                fetch_buffer_full=lane.st_fetch_buffer,
                fetch_branch_redirect=lane.st_fetch_redirect,
                dispatch_rob_full=lane.st_rob_full,
                dispatch_window_full=lane.st_window_full,
                dispatch_freelist=lane.st_freelist,
                dispatch_lrf_full=lane.st_lrf_full,
                issue_lsq_full=lane.st_issue_lsq_full,
            ),
        )

    def _result(self, lane: _Lane) -> SimResult:
        return SimResult(
            benchmark=self.traces[lane.trace_index].metadata.benchmark,
            num_slices=lane.num_slices,
            l2_cache_kb=lane.l2_kb,
            stats=self._lane_stats(lane),
        )

    def run(self) -> List[SimResult]:
        """Run every lane to the end of its trace; results in lane order."""
        self.run_to_commit([lane.cols.length - lane.ff_retired
                            for lane in self.lanes])
        return [self._result(lane) for lane in self.lanes]

    def run_sampled(self, sampling: Any,
                    phase_lengths: Optional[Sequence[int]] = None
                    ) -> List[SimResult]:
        """Sampled run: every lane follows the scalar
        :class:`~repro.sampling.sampled.SampledSimulator` loop exactly
        (same schedule, same window targets, same extrapolation), with
        lanes of one trace advancing window-by-window together.
        """
        from repro.sampling.policy import SamplingPolicy
        from repro.sampling.sampled import extrapolate_sampled

        if phase_lengths is not None and len(self.traces) > 1:
            raise ValueError(
                "phase_lengths applies to a single-trace batch")
        policy = SamplingPolicy(sampling)
        schedules = [
            (policy.plan_phases(phase_lengths)
             if phase_lengths is not None else policy.plan(cols.length))
            for cols in self._cols
        ]
        results: List[Optional[SimResult]] = [None] * len(self.lanes)
        exact_lanes = [lane for lane in self.lanes
                       if schedules[lane.trace_index].exact]
        if exact_lanes:
            self.run_to_commit(
                [lane.cols.length - lane.ff_retired
                 for lane in exact_lanes], lanes=exact_lanes)
            for lane in exact_lanes:
                results[lane.index] = self._result(lane)
        groups: Dict[int, List[_Lane]] = {}
        for lane in self.lanes:
            if not schedules[lane.trace_index].exact:
                groups.setdefault(lane.trace_index, []).append(lane)
        for tidx, group in groups.items():
            schedule = schedules[tidx]
            total = self._cols[tidx].length
            cpis: Dict[int, List[float]] = {lane.index: []
                                            for lane in group}
            head_cycles: Dict[int, int] = {lane.index: 0
                                           for lane in group}
            position = 0
            head = schedule.head
            if head:
                for lane in group:
                    lane.fetch_limit = head
                self.run_to_commit([head] * len(group), lanes=group)
                for lane in group:
                    head_cycles[lane.index] = lane.now
                position = head
            for window in schedule.windows:
                if window.start > position:
                    gap = window.start - position
                    for lane in group:
                        self._fast_forward(lane, gap)
                bases = {lane.index: lane.committed for lane in group}
                for lane in group:
                    lane.fetch_limit = window.end
                self.run_to_commit(
                    [bases[lane.index] + window.warmup for lane in group],
                    lanes=group)
                marks = {lane.index: (lane.now, lane.committed)
                         for lane in group}
                self.run_to_commit(
                    [bases[lane.index] + len(window) for lane in group],
                    lanes=group)
                for lane in group:
                    cycles_0, committed_0 = marks[lane.index]
                    measured = lane.committed - committed_0
                    cpis[lane.index].append(
                        (lane.now - cycles_0) / measured)
                position = window.end
            if position < total:
                gap = total - position
                for lane in group:
                    self._fast_forward(lane, gap)
            for lane in group:
                results[lane.index] = extrapolate_sampled(
                    benchmark=self.traces[tidx].metadata.benchmark,
                    num_slices=lane.num_slices,
                    l2_cache_kb=lane.l2_kb,
                    total=total,
                    schedule=schedule,
                    sampling=sampling,
                    stats=self._lane_stats(lane),
                    ff_retired=lane.ff_retired,
                    cpis=cpis[lane.index],
                    head_cycles=head_cycles[lane.index],
                )
        return results  # type: ignore[return-value]


# ======================================================================
# module-level entry points
# ======================================================================


def simulate_batched(trace: Trace, num_slices: int = 1,
                     l2_cache_kb: float = 128.0,
                     config: Optional[SimConfig] = None,
                     warmup_trace: Optional[Trace] = None,
                     warmup_addresses: Optional[Sequence[int]] = None,
                     timeout: Optional[int] = None,
                     obs: Any = None) -> SimResult:
    """One-configuration convenience wrapper (a one-lane batch)."""
    sim = BatchedSimulator(
        trace, [(num_slices, l2_cache_kb)], config=config,
        warmup_traces=[warmup_trace] if warmup_trace is not None else None,
        warmup_addresses=([warmup_addresses]
                          if warmup_addresses is not None else None),
        timeout=timeout, obs=obs,
    )
    return sim.run()[0]


def simulate_grid(trace: Trace, cache_grid: Sequence[float],
                  slice_grid: Sequence[int],
                  config: Optional[SimConfig] = None,
                  warmup_trace: Optional[Trace] = None,
                  warmup_addresses: Optional[Sequence[int]] = None,
                  timeout: Optional[int] = None,
                  sampling: Any = None,
                  phase_lengths: Optional[Sequence[int]] = None
                  ) -> Dict[Tuple[float, int], SimResult]:
    """One batched pass over a (cache_kb, slices) grid.

    Returns ``{(cache_kb, slices): SimResult}`` for every grid point;
    with ``sampling`` the run composes interval sampling with batching
    (sampled extrapolation per lane, shared fast-forward schedule).
    """
    points = [(float(c), int(s)) for c in cache_grid for s in slice_grid]
    sim = BatchedSimulator(
        trace, [(s, c) for c, s in points], config=config,
        warmup_traces=[warmup_trace] if warmup_trace is not None else None,
        warmup_addresses=([warmup_addresses]
                          if warmup_addresses is not None else None),
        timeout=timeout,
    )
    if sampling is not None:
        results = sim.run_sampled(sampling, phase_lengths=phase_lengths)
    else:
        results = sim.run()
    return dict(zip(points, results))
