"""The Sharing Architecture core: Slices, VCores, and the SSim simulator.

This package is the reproduction of the paper's primary contribution
(Sections 3 and 5.2): a fine-grain composable architecture where a Virtual
Core (VCore) is synthesised from one to eight Slices plus zero or more L2
Cache Banks, and SSim, the trace-driven cycle-level simulator that models
every subsystem - fetch, two-stage rename, issue, execution, memory,
commit, and the three on-chip networks.
"""

from repro.core.config import (
    SliceConfig,
    CacheLevelConfig,
    CacheConfig,
    VCoreConfig,
    SimConfig,
)
from repro.core.structures import (
    StructurePolicy,
    STRUCTURE_POLICIES,
    replicated_structures,
    partitioned_structures,
)
from repro.core.branch import BimodalPredictor, BranchTargetBuffer, BranchUnit
from repro.core.vcore import VCore
from repro.core.simulator import SharingSimulator, SimResult
from repro.core.reconfig import ReconfigurationEngine, ReconfigCost

__all__ = [
    "SliceConfig",
    "CacheLevelConfig",
    "CacheConfig",
    "VCoreConfig",
    "SimConfig",
    "StructurePolicy",
    "STRUCTURE_POLICIES",
    "replicated_structures",
    "partitioned_structures",
    "BimodalPredictor",
    "BranchTargetBuffer",
    "BranchUnit",
    "VCore",
    "SharingSimulator",
    "SimResult",
    "ReconfigurationEngine",
    "ReconfigCost",
]
