"""Multi-VCore Virtual Machines: PARSEC-style multithreaded runs.

Paper Section 5.3: "For PARSEC, benchmarks use four threads on four
equally configured VCores which share an L2 Cache."  Section 3.5 places
the coherence point between the L1 and L2 caches, with a directory in
the shared L2 whose protocol charges switched-network cost by distance
and invalidates remote L1s.

This module composes N single-thread simulations - one per VCore - over
one shared L2 and one MSI directory.  Threads run their own traces (the
generator gives each thread a distinct seed over a *shared* data region
plus a private stack region), and the simulation reports both per-thread
and whole-VM timing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.cache.coherence import Directory
from repro.core.config import SimConfig
from repro.core.simulator import SharingSimulator, SimResult
from repro.network.topology import Mesh2D
from repro.trace.generator import SyntheticTraceGenerator
from repro.trace.profiles import BenchmarkProfile, get_profile
from repro.trace.records import Trace

#: Fraction of cold data that multithreaded workloads share (drives
#: coherence traffic); PARSEC pipelines share working queues.
DEFAULT_SHARED_FRACTION = 0.35


@dataclass
class ThreadResult:
    """One thread's timing on its VCore."""

    thread_id: int
    result: SimResult
    coherence_stall_cycles: int


@dataclass
class MultiVCoreResult:
    """Whole-VM outcome: the slowest thread defines completion."""

    threads: List[ThreadResult]
    directory_invalidations: int
    directory_downgrades: int

    @property
    def vm_cycles(self) -> int:
        """Barrier semantics: the VM finishes when its last thread does."""
        return max(
            t.result.cycles + t.coherence_stall_cycles for t in self.threads
        )

    @property
    def total_committed(self) -> int:
        return sum(t.result.stats.committed for t in self.threads)

    @property
    def aggregate_ipc(self) -> float:
        return self.total_committed / self.vm_cycles if self.vm_cycles else 0.0


def generate_thread_traces(benchmark: str, length: int, num_threads: int,
                           seed: int = 0,
                           shared_fraction: float = DEFAULT_SHARED_FRACTION
                           ) -> List[Trace]:
    """Per-thread traces with a shared cold-data region.

    Each thread gets its own generator (distinct control flow and private
    data), but a ``shared_fraction`` of cold lines is remapped into one
    common region so the threads contend coherently, as PARSEC pipelines
    do over their queues.
    """
    if num_threads < 1:
        raise ValueError("need at least one thread")
    if not 0 <= shared_fraction <= 1:
        raise ValueError("shared fraction must be in [0, 1]")
    profile = get_profile(benchmark)
    traces = []
    for tid in range(num_threads):
        generator = SyntheticTraceGenerator(profile, seed=seed * 101 + tid)
        trace = generator.generate(length)
        traces.append(_remap_shared(trace, tid, shared_fraction))
    return traces


#: Base of the region shared by all threads of a VM.
_SHARED_BASE = 0x7000_0000
#: Span of the shared region (lines).
_SHARED_LINES = 4096


def _remap_shared(trace: Trace, thread_id: int,
                  shared_fraction: float) -> Trace:
    """Deterministically remap a fraction of cold lines into the shared
    region (same mapping for every thread, so the regions collide)."""
    from repro.isa import Instruction, MemAccess

    remapped = []
    for inst in trace:
        mem = inst.mem
        if mem is not None and mem.address >= 0x1100_0000:
            line = mem.address // 64
            if (line * 2654435761) % 1000 < shared_fraction * 1000:
                shared_line = line % _SHARED_LINES
                mem = MemAccess(address=_SHARED_BASE + shared_line * 64,
                                size=mem.size)
        remapped.append(Instruction(
            seq=inst.seq, pc=inst.pc, opcode=inst.opcode, srcs=inst.srcs,
            dst=inst.dst, mem=mem, taken=inst.taken, target=inst.target,
        ))
    return Trace(remapped, trace.metadata)


class MultiVCoreSimulator:
    """Runs one multithreaded workload on N equally configured VCores.

    Each VCore simulates independently (threads do not stall each other
    at instruction granularity); inter-VCore interference is charged
    afterwards through the shared directory: every thread replays its
    shared-region accesses against the MSI directory, and the resulting
    invalidation/downgrade latencies accrue as coherence stall cycles.
    This is a decoupled model of the paper's detailed one - it preserves
    the trends (more sharing or more distant VCores => more stall) while
    staying tractable in Python.
    """

    def __init__(self, benchmark: str, num_vcores: int = 4,
                 slices_per_vcore: int = 2, l2_cache_kb: float = 512.0,
                 trace_length: int = 2000, seed: int = 0,
                 shared_fraction: float = DEFAULT_SHARED_FRACTION,
                 config: Optional[SimConfig] = None):
        if num_vcores < 1:
            raise ValueError("need at least one VCore")
        self.benchmark = benchmark
        self.num_vcores = num_vcores
        self.slices_per_vcore = slices_per_vcore
        self.l2_cache_kb = l2_cache_kb
        self.base_config = config or SimConfig()
        self.traces = generate_thread_traces(
            benchmark, trace_length, num_vcores, seed=seed,
            shared_fraction=shared_fraction,
        )
        # VCores laid out in a row; directory distance = VCore distance.
        mesh = Mesh2D(width=num_vcores, height=1)
        self.directory = Directory(
            distance_fn=mesh.distance, cycles_per_hop=1, base_msg_latency=1
        )

    def run(self) -> MultiVCoreResult:
        threads: List[ThreadResult] = []
        per_vcore_share = self.l2_cache_kb / self.num_vcores
        for tid, trace in enumerate(self.traces):
            cfg = self.base_config.with_vcore(
                num_slices=self.slices_per_vcore,
                l2_cache_kb=per_vcore_share,
            )
            result = SharingSimulator(trace, cfg).run()
            stall = self._coherence_stalls(tid, trace)
            threads.append(ThreadResult(thread_id=tid, result=result,
                                        coherence_stall_cycles=stall))
        stats = self.directory.stats
        return MultiVCoreResult(
            threads=threads,
            directory_invalidations=stats.invalidations_sent,
            directory_downgrades=stats.downgrades,
        )

    def _coherence_stalls(self, vcore_id: int, trace: Trace) -> int:
        """Replay shared-region accesses against the MSI directory."""
        stall = 0
        for inst in trace:
            mem = inst.mem
            if mem is None or mem.address < _SHARED_BASE:
                continue
            line = mem.address // 64
            if inst.is_store:
                outcome = self.directory.write(line, vcore_id)
            else:
                outcome = self.directory.read(line, vcore_id)
            stall += outcome.extra_latency
        return stall
