"""VCore reconfiguration (paper Section 3.8).

The hypervisor, running on single-Slice VCores, reconfigures client
VCores by rewriting interconnect and protection state.  Two costs matter:

* shrinking the Slice count requires a *Register Flush* - dirty
  architectural register state is pushed to surviving Slices over the
  Scalar Operand Network (fast: at most 64 local physical registers per
  Slice);
* changing the L2 allocation requires flushing dirty bank state to main
  memory before the banks are handed to another VCore.

Paper Section 5.10 charges 10 000 cycles when the cache configuration
changes and 500 cycles when only the Slice count changes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.trace.phases import RECONFIG_CACHE_CYCLES, RECONFIG_SLICE_CYCLES


@dataclass(frozen=True)
class ReconfigCost:
    """Cycles charged for one reconfiguration step."""

    cycles: int
    cache_flushed: bool
    registers_flushed: bool

    @property
    def is_free(self) -> bool:
        return self.cycles == 0


class ReconfigurationEngine:
    """Computes reconfiguration costs between VCore configurations."""

    def __init__(self, cache_flush_cycles: int = RECONFIG_CACHE_CYCLES,
                 slice_change_cycles: int = RECONFIG_SLICE_CYCLES):
        if cache_flush_cycles < 0 or slice_change_cycles < 0:
            raise ValueError("costs cannot be negative")
        self.cache_flush_cycles = cache_flush_cycles
        self.slice_change_cycles = slice_change_cycles

    def cost(self, old_cache_kb: float, old_slices: int,
             new_cache_kb: float, new_slices: int) -> ReconfigCost:
        """Cost of moving between two ``(cache, slices)`` configurations.

        A cache change dominates (the L2 flush includes redistributing
        register state); a pure Slice change needs only the Register
        Flush instruction over the operand network.
        """
        if old_slices < 1 or new_slices < 1:
            raise ValueError("VCores have at least one Slice")
        if old_cache_kb < 0 or new_cache_kb < 0:
            raise ValueError("cache sizes cannot be negative")
        if old_cache_kb != new_cache_kb:
            return ReconfigCost(
                cycles=self.cache_flush_cycles,
                cache_flushed=True,
                registers_flushed=old_slices != new_slices,
            )
        if old_slices != new_slices:
            return ReconfigCost(
                cycles=self.slice_change_cycles,
                cache_flushed=False,
                registers_flushed=True,
            )
        return ReconfigCost(cycles=0, cache_flushed=False,
                            registers_flushed=False)

    def schedule_cost(self, configs) -> int:
        """Total cycles for a sequence of per-phase configurations."""
        total = 0
        for (old_c, old_s), (new_c, new_s) in zip(configs, configs[1:]):
            total += self.cost(old_c, old_s, new_c, new_s).cycles
        return total

    def register_flush_cycles(self, num_slices: int,
                              regs_per_slice: int = 64,
                              network_cycles_per_reg: int = 1) -> int:
        """First-order cost of the Register Flush instruction itself.

        There are at most 64 local physical registers per Slice and the
        SON is fast for register data (Section 3.8), so the flush is a
        small constant compared to the scheduling quantum.
        """
        if num_slices < 1:
            raise ValueError("VCores have at least one Slice")
        return regs_per_slice * network_cycles_per_reg * num_slices
