"""VCore composition: Slices + L2 banks + the three switched networks.

A VCore (paper Section 3) is "composed out of one or more Slices and zero
or more L2 Cache Banks".  Slices in a VCore must be contiguous (to bound
operand communication cost); cache banks may sit anywhere, and their
latency is modelled by distance (Table 3).  This module builds the
structural state the SSim cycle loop operates on.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from repro.cache.hierarchy import CacheHierarchy
from repro.cache.l1 import L1Cache
from repro.cache.l2 import BankedL2
from repro.cache.mshr import MSHRFile
from repro.cache.storebuffer import StoreBuffer
from repro.core.branch import BranchUnit
from repro.core.config import SimConfig
from repro.core.dyninst import DynInst
from repro.core.issue import SliceIssueStage
from repro.core.lsq import DistributedLSQ
from repro.core.rename import GlobalRenameState, LocalRegisterFile
from repro.core.rob import DistributedROB
from repro.network.switched import SwitchedNetwork
from repro.network.topology import Mesh2D


@dataclass
class SliceContext:
    """All per-Slice structural state."""

    slice_id: int
    branch_unit: BranchUnit
    issue_stage: SliceIssueStage
    lrf: LocalRegisterFile
    l1i: L1Cache
    hierarchy: CacheHierarchy
    fetch_buffer: Deque[DynInst] = field(default_factory=deque)
    #: global reg -> cycle its value arrived at this Slice (LRF caching of
    #: remote operands, Section 3.2.2).
    operand_arrival: Dict[int, int] = field(default_factory=dict)


class VCore:
    """A configured Virtual Core ready for simulation."""

    def __init__(self, config: SimConfig):
        self.config = config
        s_cfg = config.slice_config
        v_cfg = config.vcore
        self.num_slices = v_cfg.num_slices

        # Slices sit contiguously on one mesh row (Section 3: "when Slices
        # are joined into a single VCore, those Slices need to be
        # contiguous").
        self.mesh = Mesh2D(width=max(1, self.num_slices), height=1)
        self.operand_network = SwitchedNetwork(
            self.mesh,
            name="son",
            model_contention=config.model_contention,
            channels=config.operand_network_channels,
        )
        self.ls_network = SwitchedNetwork(self.mesh, name="ls_sort")
        self.rename_network = SwitchedNetwork(self.mesh, name="rename")

        # Shared, banked L2 (zero banks = every L1 miss goes to memory).
        self.l2 = BankedL2(
            num_banks=v_cfg.num_l2_banks,
            distances=v_cfg.bank_distances(),
        )

        cache_cfg = config.cache_config
        self.slices: List[SliceContext] = []
        for sid in range(self.num_slices):
            # Paper Section 3.5: "The L1 I-Cache cache line size is reduced
            # to accommodate two instructions" - 8 bytes at 4 bytes per
            # instruction - so each Slice caches exactly its interleaved
            # share of the code stream.
            l1i = L1Cache(
                name=f"s{sid}.l1i",
                size_bytes=int(cache_cfg.l1i.size_kb * 1024),
                line_size=2 * 4,
                assoc=cache_cfg.l1i.assoc,
                hit_latency=cache_cfg.l1i.hit_delay,
            )
            l1d = L1Cache(
                name=f"s{sid}.l1d",
                size_bytes=int(cache_cfg.l1d.size_kb * 1024),
                assoc=cache_cfg.l1d.assoc,
                hit_latency=cache_cfg.l1d.hit_delay,
            )
            hierarchy = CacheHierarchy(
                l1d=l1d,
                l2=self.l2,
                mshr=MSHRFile(capacity=s_cfg.max_inflight_loads),
                store_buffer=StoreBuffer(capacity=s_cfg.store_buffer_size),
                memory_latency=cache_cfg.memory_delay,
            )
            self.slices.append(
                SliceContext(
                    slice_id=sid,
                    branch_unit=BranchUnit(
                        predictor_entries=s_cfg.branch_predictor_entries,
                        btb_entries=s_cfg.btb_entries,
                        predictor_kind=s_cfg.predictor_kind,
                    ),
                    issue_stage=SliceIssueStage(
                        sid, window_size=s_cfg.issue_window_size
                    ),
                    lrf=LocalRegisterFile(capacity=s_cfg.num_local_registers),
                    l1i=l1i,
                    hierarchy=hierarchy,
                )
            )

        # "The global logical register space is sized for the maximum
        # number of Slices in a VCore" (Section 3.2): 8 Slices x 64 local
        # registers.  Table 2's 128 physical registers are the per-Slice
        # budget (64 LRF entries + renamed remote-operand storage).
        self.global_rename = GlobalRenameState(num_global=64 * 8)
        self.rob = DistributedROB(
            num_slices=self.num_slices,
            per_slice_capacity=s_cfg.rob_size,
            precommit_sync=config.precommit_sync,
        )
        self.lsq = DistributedLSQ(
            num_slices=self.num_slices, bank_capacity=s_cfg.lsq_size
        )

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    def attach_obs(self, scope, tracer=None) -> None:
        """Attach every structural component to an observability scope.

        Layout (dotted paths under ``scope``): ``core.rob``,
        ``core.rename``, ``core.lsq.bank<i>``, ``core.slice<i>.{l1i,
        l1d, mshr, store_buffer, lrf}``, ``cache.l2[.bank<j>]`` and
        ``network.{son, ls_sort, rename}``.  ``tracer``, when given, is
        handed to the switched networks so message transit emits trace
        events.
        """
        from repro.obs.tracer import NULL_TRACER
        tracer = tracer if tracer is not None else NULL_TRACER

        core = scope.scope("core")
        self.rob.attach_obs(core.scope("rob"))
        self.global_rename.attach_obs(core.scope("rename"))
        self.lsq.attach_obs(core.scope("lsq"))
        for ctx in self.slices:
            s = core.scope(f"slice{ctx.slice_id}")
            ctx.l1i.attach_obs(s.scope("l1i"))
            ctx.hierarchy.attach_obs(s)
            ctx.lrf.attach_obs(s.scope("lrf"))
        self.l2.attach_obs(scope.scope("cache.l2"))
        for net in (self.operand_network, self.ls_network,
                    self.rename_network):
            net.attach_obs(scope.scope(f"network.{net.name}"), tracer=tracer)

    # ------------------------------------------------------------------
    # composition queries
    # ------------------------------------------------------------------

    def slice_for_fetch(self, pc: int) -> int:
        """Interleaved fetch assignment (Section 3.1).

        Fetch is interleaved by *static* position: each Slice fetches two
        contiguous instructions, so "the same PC is always fetched by the
        same Slice" and every static branch trains exactly one Slice's
        predictor.
        """
        width = self.config.slice_config.fetch_width
        return (pc // width) % self.num_slices

    def operand_latency(self, src_slice: int, dst_slice: int) -> int:
        """One-way SON latency between two Slices (2 cycles nearest
        neighbour, +1 per extra hop)."""
        return self.operand_network.latency(src_slice, dst_slice)

    def sort_latency(self, src_slice: int, home_slice: int) -> int:
        """Load/store sorting network latency."""
        return self.ls_network.latency(src_slice, home_slice)

    @property
    def l2_cache_kb(self) -> float:
        return self.l2.size_kb

    def flush_for_reconfiguration(self) -> int:
        """Flush all dirty cache state; returns dirty lines written back."""
        total = 0
        for ctx in self.slices:
            total += ctx.hierarchy.flush_all()
            ctx.operand_arrival.clear()
            ctx.lrf.flush_remote_cache()
        return total
