"""Distributed Reorder Buffer (paper Section 3.7).

ROB entries are partitioned across Slices (Table 1), so aggregate
capacity grows with Slice count.  Commit follows the Core Fusion
pre-commit approach: a pre-commit pointer guarantees all ROBs are up to
date several cycles before true commit, which we model as a fixed
synchronisation delay between completion and commit eligibility in
multi-Slice VCores.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterator, List, Optional

from repro.core.dyninst import DynInst


class DistributedROB:
    """Program-order window partitioned across per-Slice ROB segments."""

    def __init__(self, num_slices: int, per_slice_capacity: int = 64,
                 precommit_sync: int = 3):
        if num_slices < 1:
            raise ValueError("need at least one Slice")
        if per_slice_capacity < 1:
            raise ValueError("ROB segment needs capacity >= 1")
        self.num_slices = num_slices
        self.per_slice_capacity = per_slice_capacity
        #: Pre-commit pointer exchange cost; only paid by multi-Slice VCores.
        self.precommit_sync = precommit_sync if num_slices > 1 else 0
        self._window: Deque[DynInst] = deque()
        self._per_slice_count: List[int] = [0] * num_slices
        self.dispatched = 0
        self.full_stalls = 0

    def __len__(self) -> int:
        return len(self._window)

    @property
    def total_capacity(self) -> int:
        return self.per_slice_capacity * self.num_slices

    def can_dispatch(self, slice_id: int) -> bool:
        return self._per_slice_count[slice_id] < self.per_slice_capacity

    def dispatch(self, dyn: DynInst) -> bool:
        """Append in program order; False (stall) when the segment is full."""
        if not self.can_dispatch(dyn.slice_id):
            self.full_stalls += 1
            return False
        if self._window and dyn.seq <= self._window[-1].seq:
            raise ValueError("ROB dispatch must follow program order")
        self._window.append(dyn)
        self._per_slice_count[dyn.slice_id] += 1
        self.dispatched += 1
        return True

    def attach_obs(self, scope) -> None:
        """Register gauges over the ROB counters and occupancy."""
        scope.gauge("dispatched", lambda: self.dispatched)
        scope.gauge("full_stalls", lambda: self.full_stalls)
        scope.gauge("occupancy", lambda: len(self._window))
        scope.info("per_slice_capacity", self.per_slice_capacity)
        scope.info("precommit_sync", self.precommit_sync)

    def head(self) -> Optional[DynInst]:
        return self._window[0] if self._window else None

    def commit_eligible(self, now: int) -> Optional[DynInst]:
        """Head instruction if it may truly commit at cycle ``now``."""
        head = self.head()
        if head is None or not head.is_complete:
            return None
        if head.complete_cycle + self.precommit_sync > now:
            return None
        return head

    def pop_head(self) -> DynInst:
        head = self._window.popleft()
        self._per_slice_count[head.slice_id] -= 1
        return head

    def squash_younger(self, seq: int) -> List[DynInst]:
        """Remove every instruction younger than ``seq`` (tail first)."""
        squashed: List[DynInst] = []
        while self._window and self._window[-1].seq > seq:
            victim = self._window.pop()
            self._per_slice_count[victim.slice_id] -= 1
            victim.squashed = True
            squashed.append(victim)
        return squashed

    def __iter__(self) -> Iterator[DynInst]:
        return iter(self._window)

    def occupancy_of(self, slice_id: int) -> int:
        return self._per_slice_count[slice_id]
