"""Branch prediction: distributed bimodal predictor plus BTB.

Paper Section 3.1: each Slice carries a local bimodal predictor [40]
indexed by PC.  Because fetch is interleaved, the same PC always lands on
the same Slice, so each static branch trains exactly one Slice's
predictor - effective capacity grows with Slice count.  The BTB is
*replicated*: Slices that do not execute a branch install "fake" entries
pointing at the Slice-interleaved next fetch address, so every Slice can
redirect its own fetch stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


class BimodalPredictor:
    """Classic two-bit saturating-counter predictor indexed by PC."""

    #: Counter thresholds: 0-1 predict not-taken, 2-3 predict taken.
    _INIT = 1

    def __init__(self, entries: int = 1024):
        if entries < 1 or entries & (entries - 1):
            raise ValueError("predictor entries must be a power of two")
        self.entries = entries
        self._counters: Dict[int, int] = {}
        self.lookups = 0
        self.correct = 0

    def _index(self, pc: int) -> int:
        return pc % self.entries

    def predict(self, pc: int) -> bool:
        """Predicted direction for the branch at ``pc``."""
        self.lookups += 1
        counter = self._counters.get(self._index(pc), self._INIT)
        return counter >= 2

    def train(self, pc: int, taken: bool, predicted: bool) -> None:
        """Update the two-bit counter after resolution."""
        idx = self._index(pc)
        counter = self._counters.get(idx, self._INIT)
        if taken:
            counter = min(3, counter + 1)
        else:
            counter = max(0, counter - 1)
        self._counters[idx] = counter
        if predicted == taken:
            self.correct += 1

    @property
    def accuracy(self) -> float:
        return self.correct / self.lookups if self.lookups else 1.0


class GSharePredictor(BimodalPredictor):
    """Gshare: the prediction table is indexed by PC xor global history.

    Paper Section 3.1 notes that a global scheme needs a Global History
    Register composed across Slices "with appropriate delay"; modelled
    here as a per-Slice GHR over the branches that Slice observes, the
    composition delay being the reason the paper defaults to bimodal.
    """

    def __init__(self, entries: int = 1024, history_bits: int = 8):
        super().__init__(entries)
        if history_bits < 1:
            raise ValueError("need at least one history bit")
        self.history_bits = history_bits
        self._history = 0

    def _index(self, pc: int) -> int:
        return (pc ^ self._history) % self.entries

    def train(self, pc: int, taken: bool, predicted: bool) -> None:
        super().train(pc, taken, predicted)
        mask = (1 << self.history_bits) - 1
        self._history = ((self._history << 1) | int(taken)) & mask


@dataclass
class _BTBEntry:
    target: int
    is_fake: bool = False  # Slice-interleaved redirect, not the real target


class BranchTargetBuffer:
    """Direct-mapped BTB with support for the paper's fake entries."""

    def __init__(self, entries: int = 512):
        if entries < 1 or entries & (entries - 1):
            raise ValueError("BTB entries must be a power of two")
        self.entries = entries
        self._table: Dict[int, _BTBEntry] = {}
        self.hits = 0
        self.misses = 0

    def _index(self, pc: int) -> int:
        return pc % self.entries

    def lookup(self, pc: int) -> Optional[int]:
        entry = self._table.get(self._index(pc))
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return entry.target

    def install(self, pc: int, target: int, is_fake: bool = False) -> None:
        self._table[self._index(pc)] = _BTBEntry(target=target, is_fake=is_fake)

    def is_fake(self, pc: int) -> bool:
        entry = self._table.get(self._index(pc))
        return bool(entry and entry.is_fake)


class BranchUnit:
    """Per-Slice branch machinery: one predictor plus one BTB."""

    def __init__(self, predictor_entries: int = 1024, btb_entries: int = 512,
                 predictor_kind: str = "bimodal"):
        if predictor_kind == "bimodal":
            self.predictor = BimodalPredictor(predictor_entries)
        elif predictor_kind == "gshare":
            self.predictor = GSharePredictor(predictor_entries)
        else:
            raise ValueError(f"unknown predictor kind {predictor_kind!r}")
        self.btb = BranchTargetBuffer(btb_entries)
        self.mispredicts = 0
        self.resolved = 0

    def predict(self, pc: int) -> bool:
        """Predict direction; a taken prediction without a BTB entry is
        treated as not-taken (no target to redirect to yet)."""
        taken = self.predictor.predict(pc)
        if taken and self.btb.lookup(pc) is None:
            return False
        return taken

    def resolve(self, pc: int, taken: bool, target: Optional[int],
                predicted: bool) -> bool:
        """Train on the resolved outcome; returns True on mispredict."""
        self.resolved += 1
        self.predictor.train(pc, taken, predicted)
        if taken and target is not None:
            self.btb.install(pc, target)
        mispredicted = predicted != taken
        if mispredicted:
            self.mispredicts += 1
        return mispredicted

    @property
    def mispredict_rate(self) -> float:
        return self.mispredicts / self.resolved if self.resolved else 0.0
