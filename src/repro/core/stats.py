"""Simulation statistics.

Paper Section 5.2: "When a simulation completes, SSim reports the cycles
executed for a given workload along with cache miss rates and stage-based
micro-architecture stalls and statistics."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class StallBreakdown:
    """Per-stage stall cycle counters."""

    fetch_icache: int = 0
    fetch_buffer_full: int = 0
    fetch_branch_redirect: int = 0
    dispatch_rob_full: int = 0
    dispatch_window_full: int = 0
    dispatch_freelist: int = 0
    dispatch_lrf_full: int = 0
    issue_lsq_full: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "fetch_icache": self.fetch_icache,
            "fetch_buffer_full": self.fetch_buffer_full,
            "fetch_branch_redirect": self.fetch_branch_redirect,
            "dispatch_rob_full": self.dispatch_rob_full,
            "dispatch_window_full": self.dispatch_window_full,
            "dispatch_freelist": self.dispatch_freelist,
            "dispatch_lrf_full": self.dispatch_lrf_full,
            "issue_lsq_full": self.issue_lsq_full,
        }

    def total(self) -> int:
        return sum(self.as_dict().values())


@dataclass
class SimStats:
    """Aggregate counters collected during one SSim run."""

    cycles: int = 0
    fetched: int = 0
    committed: int = 0
    squashed: int = 0

    branches: int = 0
    branch_mispredicts: int = 0

    l1i_accesses: int = 0
    l1i_misses: int = 0
    l1d_accesses: int = 0
    l1d_misses: int = 0
    l2_accesses: int = 0
    l2_misses: int = 0

    operand_requests: int = 0
    remote_operand_hops: int = 0
    lsq_violations: int = 0
    store_forwards: int = 0

    stalls: StallBreakdown = field(default_factory=StallBreakdown)

    @property
    def ipc(self) -> float:
        return self.committed / self.cycles if self.cycles else 0.0

    @property
    def branch_accuracy(self) -> float:
        if not self.branches:
            return 1.0
        return 1.0 - self.branch_mispredicts / self.branches

    @property
    def l1d_miss_rate(self) -> float:
        return self.l1d_misses / self.l1d_accesses if self.l1d_accesses else 0.0

    @property
    def l2_miss_rate(self) -> float:
        return self.l2_misses / self.l2_accesses if self.l2_accesses else 0.0

    def summary(self) -> Dict[str, float]:
        return {
            "cycles": self.cycles,
            "committed": self.committed,
            "ipc": round(self.ipc, 4),
            "branch_accuracy": round(self.branch_accuracy, 4),
            "l1d_miss_rate": round(self.l1d_miss_rate, 4),
            "l2_miss_rate": round(self.l2_miss_rate, 4),
            "lsq_violations": self.lsq_violations,
            "squashed": self.squashed,
        }
