"""In-flight dynamic instruction state for SSim.

:class:`DynInst` is the single hottest allocation in the detailed cycle
loop (one per fetched instruction, touched by every pipeline stage), so
it is a plain ``__slots__`` class rather than a dataclass: no per-instance
``__dict__``, and the derived values the stages test every cycle
(``seq``, ``op_class``) are bound once at construction instead of being
recomputed through property chains.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.isa import Instruction, OpClass

#: Sentinel cycle meaning "not yet happened".
NEVER = -1

#: Sentinel ready cycle for an operand whose producer has not completed.
PENDING = 1 << 60


class DynInst:
    """One dynamic instruction moving through the VCore pipeline."""

    __slots__ = (
        "inst",
        "slice_id",
        "seq",
        "op_class",
        "fetch_cycle",
        "rename_cycle",
        "dispatch_cycle",
        "issue_cycle",
        "complete_cycle",
        "commit_cycle",
        "global_dst",
        "frees_global",
        "src_ready",
        "predicted_taken",
        "mispredicted",
        "mem_home_slice",
        "forwarded_from",
        "squashed",
        "waiters",
        "prior_mapping",
    )

    def __init__(self, inst: Instruction, slice_id: int,
                 fetch_cycle: int = NEVER):
        self.inst = inst
        self.slice_id = slice_id
        #: Program-order position and functional-unit class, hoisted out
        #: of the per-cycle stages (both are immutable facts of ``inst``).
        self.seq: int = inst.seq
        self.op_class: OpClass = inst.op_class
        self.fetch_cycle = fetch_cycle
        self.rename_cycle: int = NEVER
        self.dispatch_cycle: int = NEVER
        self.issue_cycle: int = NEVER
        self.complete_cycle: int = NEVER
        self.commit_cycle: int = NEVER
        #: Global logical register allocated for the destination.
        self.global_dst: Optional[int] = None
        #: Global register freed when this instruction commits.
        self.frees_global: Optional[int] = None
        #: Cycle at which each source operand becomes available on this
        #: Slice.
        self.src_ready: List[int] = []
        #: Predicted branch direction (branches only).
        self.predicted_taken: bool = False
        #: True once the branch resolved as mispredicted.
        self.mispredicted: bool = False
        #: Home Slice executing the memory access (after LS sorting).
        self.mem_home_slice: Optional[int] = None
        #: Load satisfied by forwarding from this store seq, if any.
        self.forwarded_from: Optional[int] = None
        #: Squashed by a memory-order violation replay.
        self.squashed: bool = False
        #: Consumers waiting on this result: (consumer, src_idx).
        self.waiters: List[Tuple["DynInst", int]] = []
        #: Prior global RAT mapping displaced by this instruction's
        #: destination rename (freed at commit, restored on squash).
        self.prior_mapping: Optional[Any] = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"DynInst(seq={self.seq}, slice={self.slice_id}, "
                f"{self.op_class.name}, fetch={self.fetch_cycle}, "
                f"commit={self.commit_cycle})")

    @property
    def is_dispatched(self) -> bool:
        return self.dispatch_cycle != NEVER

    @property
    def is_issued(self) -> bool:
        return self.issue_cycle != NEVER

    @property
    def is_complete(self) -> bool:
        return self.complete_cycle != NEVER

    @property
    def is_committed(self) -> bool:
        return self.commit_cycle != NEVER

    def ready_cycle(self) -> int:
        """Cycle at which all source operands are available."""
        ready = self.dispatch_cycle
        for cycle in self.src_ready:
            if cycle > ready:
                ready = cycle
        return ready
