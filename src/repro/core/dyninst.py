"""In-flight dynamic instruction state for SSim."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from repro.isa import Instruction, OpClass

#: Sentinel cycle meaning "not yet happened".
NEVER = -1

#: Sentinel ready cycle for an operand whose producer has not completed.
PENDING = 1 << 60


@dataclass
class DynInst:
    """One dynamic instruction moving through the VCore pipeline."""

    inst: Instruction
    slice_id: int
    fetch_cycle: int = NEVER
    rename_cycle: int = NEVER
    dispatch_cycle: int = NEVER
    issue_cycle: int = NEVER
    complete_cycle: int = NEVER
    commit_cycle: int = NEVER

    #: Global logical register allocated for the destination.
    global_dst: Optional[int] = None
    #: Global register freed when this instruction commits.
    frees_global: Optional[int] = None
    #: Cycle at which each source operand becomes available on this Slice.
    src_ready: List[int] = field(default_factory=list)
    #: Predicted branch direction (branches only).
    predicted_taken: bool = False
    #: True once the branch resolved as mispredicted.
    mispredicted: bool = False
    #: Home Slice executing the memory access (after LS sorting).
    mem_home_slice: Optional[int] = None
    #: Load satisfied by forwarding from this store seq, if any.
    forwarded_from: Optional[int] = None
    #: Squashed by a memory-order violation replay.
    squashed: bool = False
    #: Consumers waiting on this instruction's result: (consumer, src_idx).
    waiters: List[Tuple["DynInst", int]] = field(default_factory=list)
    #: Prior global RAT mapping displaced by this instruction's destination
    #: rename (freed at commit, restored on squash).
    prior_mapping: Optional[Any] = None

    @property
    def seq(self) -> int:
        return self.inst.seq

    @property
    def op_class(self) -> OpClass:
        return self.inst.op_class

    @property
    def is_dispatched(self) -> bool:
        return self.dispatch_cycle != NEVER

    @property
    def is_issued(self) -> bool:
        return self.issue_cycle != NEVER

    @property
    def is_complete(self) -> bool:
        return self.complete_cycle != NEVER

    @property
    def is_committed(self) -> bool:
        return self.commit_cycle != NEVER

    def ready_cycle(self) -> int:
        """Cycle at which all source operands are available."""
        if not self.src_ready:
            return self.dispatch_cycle
        return max(self.src_ready + [self.dispatch_cycle])
