"""Sampled simulation (SMARTS-style interval sampling) for SSim.

The paper's SSim runs full-length GEM5 traces; at cycle-level detail
that is the dominant cost of every figure.  This package trades bounded,
*reported* error for wall-clock speedup: functional fast-forward keeps
micro-architectural state warm between short detailed windows, and the
per-window CPI variance yields a confidence interval on the
extrapolated IPC.

Public surface:

* :class:`SamplingConfig` / :class:`SamplingPolicy` / :class:`Schedule`
  - plan which trace regions run in detail;
* :class:`SampledSimulator` / :func:`simulate_sampled` - execute the
  plan and extrapolate a :class:`~repro.core.simulator.SimResult`;
* :class:`Checkpoint` - snapshot/restore warmed simulator state;
* :data:`DEFAULT_SAMPLING` - the default policy used by engine and CLI
  ``--sampling`` flags.
"""

from repro.sampling.checkpoint import Checkpoint
from repro.sampling.policy import (
    DEFAULT_SAMPLING,
    SamplingConfig,
    SamplingPolicy,
    Schedule,
    Window,
)
from repro.sampling.sampled import (
    SampledSimulator,
    SamplingSummary,
    simulate_sampled,
)

__all__ = [
    "Checkpoint",
    "DEFAULT_SAMPLING",
    "SampledSimulator",
    "SamplingConfig",
    "SamplingPolicy",
    "SamplingSummary",
    "Schedule",
    "Window",
    "simulate_sampled",
]
