"""Sampling policies: which trace regions run in detail.

SMARTS-style periodic interval sampling (Wunderlich et al., ISCA'03),
adapted to SSim's synthetic traces: the trace is divided into fixed
intervals; each interval contributes one *detailed window* of
``warmup + detail`` instructions (the warmup prefix re-times the
pipeline after a functional gap and is excluded from measurement), and
everything between windows is functionally fast-forwarded with caches,
branch predictors and store state kept warm.

:class:`SamplingPolicy` turns a :class:`SamplingConfig` into a concrete
:class:`Schedule` for a trace length.  ``plan_phases`` stratifies the
schedule over program phases (:mod:`repro.trace.phases`): every phase
receives at least one detailed window, so phase-skewed traces cannot be
aliased away by an unlucky period.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class SamplingConfig:
    """Knobs of the periodic sampling policy.

    Attributes
    ----------
    interval:
        Period between detailed-window starts, in instructions.
    head:
        Instructions at the very start of the trace that are run in
        detail and measured *exactly* instead of sampled.  Simulated
        programs begin with a cold-start transient (pipeline fill,
        cold branch predictor, cold LSQ) whose CPI is 2-3x the steady
        state; whether a jittered window happens to land on it - and
        where - dominates both the bias and the variance of a purely
        periodic estimate.  Measuring the head exhaustively removes
        that stratum from the error budget at a cost that is constant
        in trace length.
    detail:
        Measured instructions per window.
    warmup:
        Detailed-but-unmeasured instructions run before each measured
        region to re-time the pipeline after a functional gap.
    min_windows:
        Fewer planned windows than this degenerates to an exact run
        (the variance estimate would be meaningless).
    jitter_seed:
        Seed for the per-interval window offsets.  Each interval's
        window lands at a *seeded-random* offset rather than the
        interval head: workload generators (and real programs) have
        periodic behaviour, and strictly periodic windows alias onto
        it - the synthetic gcc trace showed a stable ~16% IPC bias
        from exactly this resonance.  ``None`` disables the jitter
        (windows start at interval heads).  The seed is part of the
        schedule, so a given config remains fully deterministic and
        cache-keyable.
    confidence_z:
        z-score of the reported confidence interval (1.96 = 95%).
    bias_floor:
        Relative systematic-error floor folded into the interval; the
        statistical CI alone cannot see warmup bias, so the reported
        interval is never narrower than ``+-bias_floor * IPC``.
    """

    interval: int = 2000
    detail: int = 400
    warmup: int = 200
    head: int = 1000
    min_windows: int = 3
    jitter_seed: Any = 0x51AB
    confidence_z: float = 1.96
    bias_floor: float = 0.02

    def __post_init__(self) -> None:
        if self.interval < 1:
            raise ValueError("interval must be >= 1 instruction")
        if self.detail < 1:
            raise ValueError("detail window must be >= 1 instruction")
        if self.warmup < 0:
            raise ValueError("warmup must be >= 0")
        if self.warmup + self.detail > self.interval:
            raise ValueError(
                "warmup + detail must fit inside one interval "
                f"({self.warmup} + {self.detail} > {self.interval})"
            )
        if self.head < 0:
            raise ValueError("head must be >= 0")
        if self.min_windows < 1:
            raise ValueError("min_windows must be >= 1")
        if self.confidence_z <= 0:
            raise ValueError("confidence_z must be positive")
        if not 0.0 <= self.bias_floor < 1.0:
            raise ValueError("bias_floor is a relative fraction in [0, 1)")

    def key_fields(self) -> Dict[str, Any]:
        """Stable mapping for result-cache fingerprints."""
        return {
            "interval": self.interval,
            "detail": self.detail,
            "warmup": self.warmup,
            "head": self.head,
            "min_windows": self.min_windows,
            "jitter_seed": self.jitter_seed,
            "confidence_z": self.confidence_z,
            "bias_floor": self.bias_floor,
        }


#: Default policy, selected by an offline schedule search over the
#: recorded exact commit-cycle curves of all fifteen trace profiles
#: (candidate interval/warmup/detail/head grids x 64 jitter seeds,
#: then re-validated against real sampled runs): worst-profile IPC
#: error -4.3% at 96k instructions, every profile inside the reported
#: 95% CI, and a ~25% detail fraction (>= 3x wall-clock speedup).
#: The jitter seed is part of the operating point - changing it
#: changes which trace regions are sampled and re-opens the error
#: budget, so treat the tuple as one calibrated unit.
DEFAULT_SAMPLING = SamplingConfig(
    interval=1100,
    detail=180,
    warmup=80,
    head=2000,
    jitter_seed=12,
)


@dataclass(frozen=True)
class Window:
    """One detailed window: ``[start, end)`` in trace positions."""

    start: int
    warmup: int
    detail: int

    @property
    def measure_start(self) -> int:
        return self.start + self.warmup

    @property
    def end(self) -> int:
        return self.start + self.warmup + self.detail

    def __len__(self) -> int:
        return self.warmup + self.detail


@dataclass(frozen=True)
class Schedule:
    """A concrete sampling plan for one trace length.

    ``exact`` schedules carry no windows: the caller should run the
    whole trace in detail (the trace was too short to sample).

    ``head`` instructions at the start of the trace run in detail and
    count as measured *exactly* (the cold-start stratum); windows cover
    only ``[head, length)``.
    """

    length: int
    windows: Tuple[Window, ...]
    exact: bool = False
    head: int = 0

    @property
    def detailed_instructions(self) -> int:
        return self.head + sum(len(w) for w in self.windows)

    @property
    def measured_instructions(self) -> int:
        return self.head + sum(w.detail for w in self.windows)

    @property
    def fast_forward_instructions(self) -> int:
        return self.length - self.detailed_instructions

    @property
    def detail_fraction(self) -> float:
        if not self.length:
            return 1.0
        return self.detailed_instructions / self.length


class SamplingPolicy:
    """Plans detailed windows over a trace."""

    def __init__(self, config: SamplingConfig = DEFAULT_SAMPLING):
        self.config = config

    def plan(self, length: int) -> Schedule:
        """One window per interval, at a seeded-random in-interval offset.

        The first ``head`` instructions form an exhaustively-measured
        stratum; the periodic windows tile the remaining tail.
        """
        cfg = self.config
        head = min(cfg.head, length)
        windows = self._windows_for_segment(head, length - head, self._rng())
        if len(windows) < cfg.min_windows:
            return Schedule(length=length, windows=(), exact=True)
        return Schedule(length=length, windows=tuple(windows), head=head)

    def plan_phases(self, phase_lengths: Sequence[int]) -> Schedule:
        """Stratified schedule: every phase gets >= 1 detailed window.

        ``phase_lengths`` are instruction counts per phase in order
        (e.g. ``[p.instructions for p in phased_profile]``).  Each phase
        is planned as its own segment, so one short phase cannot be
        skipped entirely by a misaligned period.
        """
        cfg = self.config
        if not phase_lengths:
            raise ValueError("need at least one phase")
        if any(n < 1 for n in phase_lengths):
            raise ValueError("phase lengths must be positive")
        length = sum(phase_lengths)
        head = min(cfg.head, length)
        window_span = cfg.warmup + cfg.detail
        rng = self._rng()
        windows: List[Window] = []
        base = 0
        for n in phase_lengths:
            # The exhaustively-measured head may swallow a phase prefix
            # (or a whole phase - then the head measures it exactly).
            seg_start = max(base, head)
            seg_len = base + n - seg_start
            base += n
            if seg_len <= 0:
                continue
            if seg_len < window_span:
                # Degenerate phase: too short even for one window -
                # fold it into an exact run rather than mis-measure.
                return Schedule(length=length, windows=(), exact=True)
            windows.extend(self._windows_for_segment(seg_start, seg_len, rng))
        if len(windows) < cfg.min_windows:
            return Schedule(length=length, windows=(), exact=True)
        return Schedule(length=length, windows=tuple(windows), head=head)

    def _rng(self) -> Optional[random.Random]:
        if self.config.jitter_seed is None:
            return None
        return random.Random(self.config.jitter_seed)

    def _windows_for_segment(self, base: int, n: int,
                             rng: Optional[random.Random]) -> List[Window]:
        """One window per interval of ``[base, base + n)``.

        The window lands at a seeded-random offset within its interval
        (see ``SamplingConfig.jitter_seed``): strictly periodic placement
        aliases onto periodic workload behaviour and produces a *stable*
        bias that no amount of windows averages away.
        """
        cfg = self.config
        window_span = cfg.warmup + cfg.detail
        windows: List[Window] = []
        offset = 0
        while offset + window_span <= n:
            room = min(cfg.interval, n - offset) - window_span
            jitter = rng.randint(0, room) if (rng is not None
                                              and room > 0) else 0
            windows.append(Window(start=base + offset + jitter,
                                  warmup=cfg.warmup, detail=cfg.detail))
            offset += cfg.interval
        return windows
