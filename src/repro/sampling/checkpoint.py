"""Micro-architectural checkpoints for sampled simulation.

A :class:`Checkpoint` snapshots the *warm* state of a drained
:class:`~repro.core.simulator.SharingSimulator` - caches, branch
predictors/BTBs, store buffers, LSQ/L2 counters, rename state - plus the
trace cursor and accumulated statistics.  Restoring rewinds the
simulator to that point, so a warmed position in the trace can be
re-simulated under several measurement schedules (or simply replayed)
without paying the functional fast-forward again.

Checkpoints only capture drained pipelines (no instructions in flight):
transient per-cycle state (decode queue, completion events, wakeup
lists) is empty by construction, which keeps the snapshot a pure
deep-copy of the structural components.

Snapshots share the immutable pieces (trace, config) with the live
simulator and are themselves immutable: ``restore`` copies the saved
state *again* into the simulator, so one checkpoint can be restored any
number of times.  Observability gauges attached before ``capture``
keep reading the live simulator's current components - re-attach after
a restore if gauge continuity matters.
"""

from __future__ import annotations

import copy
from typing import Any, Dict

from repro.core.simulator import SharingSimulator


class Checkpoint:
    """One restorable snapshot of a drained simulator."""

    def __init__(self, vcore: Any, scalars: Dict[str, Any], stats: Any):
        self._vcore = vcore
        self._scalars = scalars
        self._stats = stats

    @property
    def position(self) -> int:
        """Trace position (next instruction to fetch) at capture time."""
        return self._scalars["_fetch_ptr"]

    @property
    def cycle(self) -> int:
        """Simulated cycle at capture time."""
        return self._scalars["_now"]

    @classmethod
    def capture(cls, sim: SharingSimulator) -> "Checkpoint":
        """Snapshot ``sim``; requires a drained pipeline."""
        sim._require_drained()
        memo = cls._shared_memo(sim)
        vcore = copy.deepcopy(sim.vcore, memo)
        scalars = {
            "_now": sim._now,
            "_fetch_ptr": sim._fetch_ptr,
            "_fetch_limit": sim._fetch_limit,
            "_fetch_stall_until": sim._fetch_stall_until,
            "_next_dispatch_seq": sim._next_dispatch_seq,
            "ff_retired": sim.ff_retired,
        }
        return cls(vcore, scalars, copy.deepcopy(sim.stats))

    def restore(self, sim: SharingSimulator) -> None:
        """Rewind ``sim`` to this snapshot (reusable)."""
        memo = self._shared_memo(sim)
        sim.vcore = copy.deepcopy(self._vcore, memo)
        sim.stats = copy.deepcopy(self._stats)
        for name, value in self._scalars.items():
            setattr(sim, name, value)
        # Transient pipeline state is empty at capture by contract.
        sim._decode_queue.clear()
        sim._completion_buckets.clear()
        sim._producer_of.clear()
        sim._unresolved_stores.clear()
        sim._blocking_branch = None
        sim._buf_count = [0] * sim.vcore.num_slices
        # Rebind the hot-loop hoists onto the restored components.
        sim._slices = sim.vcore.slices
        sim._hierarchies = [ctx.hierarchy for ctx in sim._slices]
        sim._issue_head_seq = -1

    @staticmethod
    def _shared_memo(sim: SharingSimulator) -> Dict[int, Any]:
        """Deepcopy memo: share immutable/external objects, never copy.

        The config is frozen, and the switched networks hold a tracer
        reference that belongs to the session's observability - both
        must be shared across snapshots, not duplicated.
        """
        memo: Dict[int, Any] = {id(sim.config): sim.config}
        for net in (sim.vcore.operand_network, sim.vcore.ls_network,
                    sim.vcore.rename_network):
            tracer = getattr(net, "_tracer", None)
            if tracer is not None:
                memo[id(tracer)] = tracer
        return memo
