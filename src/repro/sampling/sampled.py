"""Sampled simulation: fast-forward + detailed windows + extrapolation.

:class:`SampledSimulator` wraps one :class:`SharingSimulator` and
alternates between functional fast-forward (caches/predictors/store
state warm, zero timed cycles) and bounded detailed windows planned by a
:class:`~repro.sampling.policy.SamplingPolicy`.  Each window's warmup
prefix re-times the pipeline and is discarded; the measured suffix
contributes one per-interval CPI observation.

The run reports an extrapolated :class:`SimResult`:

* ``stats.cycles`` is ``total_instructions * mean(CPI_i)``; event
  counters observed only inside detailed windows (fetch, branches,
  stalls, L1I, operand traffic) are scaled to full-trace magnitude.
* ``l1d``/``l2`` counters are **not** extrapolated: fast-forward streams
  every memory access and every PC through the hierarchy, so those miss
  counts - and hence the reported miss *rates* - cover the entire trace
  exactly.
* ``ipc_ci`` is the ``z * s / sqrt(n)`` confidence interval on IPC from
  the per-window CPI variance, widened to the policy's systematic
  ``bias_floor`` (statistics cannot see warmup bias, so the interval is
  never reported narrower than that floor).

A schedule that plans too few windows (short traces) degenerates to the
exact simulator: ``run()`` then returns a plain exact result.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.config import SimConfig
from repro.core.simulator import SharingSimulator, SimResult
from repro.core.stats import SimStats, StallBreakdown
from repro.obs import Observability
from repro.sampling.policy import (
    DEFAULT_SAMPLING, SamplingConfig, SamplingPolicy, Schedule,
)
from repro.trace.records import Trace


@dataclass(frozen=True)
class SamplingSummary:
    """What a sampled run actually did, attached to ``SimResult``."""

    windows: int
    measured_instructions: int
    detailed_instructions: int
    fast_forwarded: int
    total_instructions: int
    head_instructions: int
    cpi_mean: float
    cpi_std: float
    ipc_estimate: float
    ci_halfwidth: float

    @property
    def detail_fraction(self) -> float:
        if not self.total_instructions:
            return 1.0
        return self.detailed_instructions / self.total_instructions

    @property
    def relative_error(self) -> float:
        """Reported CI half-width as a fraction of the IPC estimate."""
        if not self.ipc_estimate:
            return 0.0
        return self.ci_halfwidth / self.ipc_estimate


class SampledSimulator:
    """Run one trace under interval sampling on one VCore configuration.

    Accepts the same construction keywords as
    :class:`~repro.core.simulator.SharingSimulator` plus the sampling
    policy; ``phase_lengths`` (instruction counts, in order) switches
    the policy to per-phase stratification.
    """

    def __init__(self, trace: Trace, config: Optional[SimConfig] = None,
                 sampling: SamplingConfig = DEFAULT_SAMPLING,
                 num_slices: Optional[int] = None,
                 l2_cache_kb: Optional[float] = None,
                 warmup_trace: Optional[Trace] = None,
                 warmup_addresses: Optional[Sequence[int]] = None,
                 timeout: Optional[int] = None,
                 obs: Optional[Observability] = None,
                 phase_lengths: Optional[Sequence[int]] = None):
        self.sim = SharingSimulator(
            trace, config=config, num_slices=num_slices,
            l2_cache_kb=l2_cache_kb, warmup_trace=warmup_trace,
            warmup_addresses=warmup_addresses, timeout=timeout, obs=obs,
        )
        self.sampling = sampling
        policy = SamplingPolicy(sampling)
        if phase_lengths is not None:
            self.schedule: Schedule = policy.plan_phases(phase_lengths)
        else:
            self.schedule = policy.plan(len(trace))

    def run(self) -> SimResult:
        sim = self.sim
        if self.schedule.exact:
            return sim.run()

        obs = sim.obs
        if obs.enabled:
            scope = obs.registry.scope("sampling")
            schedule = self.schedule
            scope.info("interval", self.sampling.interval)
            scope.gauge("windows", lambda: len(schedule.windows))
            scope.gauge("head_instructions", lambda: schedule.head)
            scope.gauge("fast_forwarded", lambda: sim.ff_retired)
            scope.gauge("detailed_committed",
                        lambda: sim.stats.committed)

        total = len(sim.trace)
        cpis: List[float] = []
        position = 0
        head_cycles = 0
        head = self.schedule.head
        if head:
            # Exhaustively-measured cold-start stratum: its 2-3x CPI
            # transient would otherwise dominate the estimator's error.
            sim._fetch_limit = head
            sim.run_to_commit(head)
            head_cycles = sim._now
            position = head
        for window in self.schedule.windows:
            if window.start > position:
                sim.fast_forward(window.start - position)
            committed_base = sim.stats.committed
            sim._fetch_limit = window.end
            # Warmup prefix: detailed, not measured.  Commit can
            # overshoot the warmup boundary by up to one cycle's commit
            # width, so measure against the *observed* counts.
            sim.run_to_commit(committed_base + window.warmup)
            cycles_0 = sim._now
            committed_0 = sim.stats.committed
            sim.run_to_commit(committed_base + len(window))
            measured = sim.stats.committed - committed_0
            cpis.append((sim._now - cycles_0) / measured)
            position = window.end
        if position < total:
            sim.fast_forward(total - position)

        sim._harvest_cache_stats()
        return self._extrapolate(cpis, head_cycles)

    # ------------------------------------------------------------------
    # estimation
    # ------------------------------------------------------------------

    def _extrapolate(self, cpis: List[float],
                     head_cycles: int = 0) -> SimResult:
        sim = self.sim
        return extrapolate_sampled(
            benchmark=sim.trace.metadata.benchmark,
            num_slices=sim.vcore.num_slices,
            l2_cache_kb=sim.vcore.l2_cache_kb,
            total=len(sim.trace),
            schedule=self.schedule,
            sampling=self.sampling,
            stats=sim.stats,
            ff_retired=sim.ff_retired,
            cpis=cpis,
            head_cycles=head_cycles,
        )


def _scaled_stats(measured: SimStats, total: int,
                  ipc_hat: float) -> SimStats:
    """Full-trace statistics extrapolated from the detailed windows.

    Window-only counters scale by ``total / detailed``; the L1D and
    L2 counters are already full-trace (fast-forward streams every
    access through the hierarchy) and pass through unscaled.
    """
    detailed = max(1, measured.committed)
    scale = total / detailed

    def s(count: int) -> int:
        return round(count * scale)

    stalls = StallBreakdown(**{
        name: s(value)
        for name, value in measured.stalls.as_dict().items()
    })
    return SimStats(
        cycles=max(1, round(total / ipc_hat)),
        fetched=s(measured.fetched),
        committed=total,
        squashed=s(measured.squashed),
        branches=s(measured.branches),
        branch_mispredicts=s(measured.branch_mispredicts),
        l1i_accesses=s(measured.l1i_accesses),
        l1i_misses=s(measured.l1i_misses),
        l1d_accesses=measured.l1d_accesses,
        l1d_misses=measured.l1d_misses,
        l2_accesses=measured.l2_accesses,
        l2_misses=measured.l2_misses,
        operand_requests=s(measured.operand_requests),
        remote_operand_hops=s(measured.remote_operand_hops),
        lsq_violations=s(measured.lsq_violations),
        store_forwards=s(measured.store_forwards),
        stalls=stalls,
    )


def extrapolate_sampled(*, benchmark: str, num_slices: int,
                        l2_cache_kb: float, total: int,
                        schedule: Schedule, sampling: SamplingConfig,
                        stats: SimStats, ff_retired: int,
                        cpis: Sequence[float],
                        head_cycles: int = 0) -> SimResult:
    """Two-stratum estimator: exact head cycles + sampled tail CPI.

    ``total_cycles ~= head_cycles + tail_insts * mean(CPI_i)``; all
    statistical uncertainty lives in the tail term, so the CI is the
    per-window CPI variance propagated through the tail only.  Shared by
    :class:`SampledSimulator` and the batched backend's ``run_sampled``
    (same window CPIs in must mean same ``SimResult`` out).
    """
    cfg = sampling
    head = schedule.head
    tail = total - head
    n = len(cpis)
    cpi_mean = sum(cpis) / n
    if n > 1:
        var = sum((c - cpi_mean) ** 2 for c in cpis) / (n - 1)
        cpi_std = math.sqrt(var)
    else:
        cpi_std = 0.0
    est_cycles = head_cycles + tail * cpi_mean
    ipc_hat = total / est_cycles

    # CI on total cycles -> CI on IPC (monotone transform), then
    # widen to the systematic bias floor.
    hw_cycles = cfg.confidence_z * (cpi_std / math.sqrt(n)) * tail
    if hw_cycles < est_cycles:
        ipc_lo = total / (est_cycles + hw_cycles)
        ipc_hi = total / (est_cycles - hw_cycles)
    else:  # variance blew past the mean: clamp at zero
        ipc_lo = 0.0
        ipc_hi = 2.0 * ipc_hat
    floor = cfg.bias_floor * ipc_hat
    ipc_lo = min(ipc_lo, ipc_hat - floor)
    ipc_hi = max(ipc_hi, ipc_hat + floor)

    summary = SamplingSummary(
        windows=n,
        measured_instructions=schedule.measured_instructions,
        detailed_instructions=stats.committed,
        fast_forwarded=ff_retired,
        total_instructions=total,
        head_instructions=head,
        cpi_mean=cpi_mean,
        cpi_std=cpi_std,
        ipc_estimate=ipc_hat,
        ci_halfwidth=max(ipc_hi - ipc_hat, ipc_hat - ipc_lo),
    )
    return SimResult(
        benchmark=benchmark,
        num_slices=num_slices,
        l2_cache_kb=l2_cache_kb,
        stats=_scaled_stats(stats, total, ipc_hat),
        sampled=True,
        ipc_ci=(ipc_lo, ipc_hi),
        sampling=summary,
    )


def simulate_sampled(trace: Trace, num_slices: int = 1,
                     l2_cache_kb: float = 128.0,
                     sampling: SamplingConfig = DEFAULT_SAMPLING,
                     config: Optional[SimConfig] = None,
                     warmup_trace: Optional[Trace] = None,
                     warmup_addresses: Optional[Sequence[int]] = None,
                     timeout: Optional[int] = None,
                     obs: Optional[Observability] = None,
                     phase_lengths: Optional[Sequence[int]] = None,
                     backend: Optional[str] = None) -> SimResult:
    """Sampled counterpart of :func:`repro.core.simulator.simulate`.

    ``backend`` overrides ``config.backend``; ``"batched"`` composes
    interval sampling with the structure-of-arrays backend (sampled and
    batched speedups multiply).
    """
    if backend is None:
        backend = config.backend if config is not None else "python"
    if backend == "batched":
        from repro.core.batched import BatchedSimulator

        sim = BatchedSimulator(
            trace, [(num_slices, l2_cache_kb)], config=config,
            warmup_traces=([warmup_trace]
                           if warmup_trace is not None else None),
            warmup_addresses=([warmup_addresses]
                              if warmup_addresses is not None else None),
            timeout=timeout, obs=obs,
        )
        return sim.run_sampled(sampling, phase_lengths=phase_lengths)[0]
    if backend != "python":
        raise ValueError(
            f"backend must be 'python' or 'batched', got {backend!r}")
    return SampledSimulator(
        trace, config=config, sampling=sampling, num_slices=num_slices,
        l2_cache_kb=l2_cache_kb, warmup_trace=warmup_trace,
        warmup_addresses=warmup_addresses, timeout=timeout, obs=obs,
        phase_lengths=phase_lengths,
    ).run()
